"""Loss modules."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F


class TestCrossEntropyLoss:
    def test_matches_functional(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)))
        labels = rng.integers(0, 3, size=5)
        loss_module = nn.CrossEntropyLoss()(logits, labels).item()
        loss_functional = F.cross_entropy(logits, labels).item()
        assert loss_module == pytest.approx(loss_functional)

    def test_perfect_prediction_is_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1])).item()
        assert loss < 1e-6

    def test_uniform_prediction_is_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nn.CrossEntropyLoss()(logits, np.arange(4)).item()
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_direction(self, rng):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.CrossEntropyLoss()(logits, np.array([1])).backward()
        # gradient should be negative for the true class, positive otherwise
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0


class TestMSELoss:
    def test_value(self, rng):
        pred = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        target = rng.normal(size=(4, 4))
        loss = nn.MSELoss()(pred, Tensor(target))
        assert loss.item() == pytest.approx(np.mean((pred.data - target) ** 2))
        loss.backward()
        assert pred.grad is not None

    def test_zero_when_equal(self, rng):
        x = rng.normal(size=(3, 3))
        assert nn.MSELoss()(Tensor(x), Tensor(x.copy())).item() == pytest.approx(0.0)


class TestKLDistillationLoss:
    def test_zero_when_identical(self, rng):
        logits = rng.normal(size=(5, 4))
        loss = nn.KLDistillationLoss()(Tensor(logits), Tensor(logits.copy()))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_positive_when_different(self, rng):
        student = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        teacher = Tensor(rng.normal(size=(5, 4)))
        loss = nn.KLDistillationLoss(temperature=2.0)(student, teacher)
        assert loss.item() > 0
        loss.backward()
        assert student.grad is not None
