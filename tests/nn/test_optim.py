"""Optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor
from repro.nn.lr_scheduler import CosineAnnealingLR, MultiStepLR, StepLR, WarmupCosineLR
from repro.nn.optim import SGD, Adam


def quadratic_loss(param, target):
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])

        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p, target).backward()
                opt.step()
            return abs(p.data[0] - 5.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.full(4, 10.0))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        # zero gradient -> only decay acts
        p.grad = np.zeros(4)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_nesterov_runs(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        quadratic_loss(p, np.ones(2)).backward()
        opt.step()
        assert not np.allclose(p.data, 0.0)

    def test_param_groups_with_different_lrs(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([{"params": [a], "lr": 0.1}, {"params": [b], "lr": 0.0}],
                  lr=0.1, momentum=0.0)
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        assert a.data[0] != 0.0
        assert b.data[0] == 0.0

    def test_skip_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set -> no change
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_zero_grad_clears(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.ones(2)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([0.5, -1.5])
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.full(3, 5.0))
        opt = Adam([p], lr=0.01, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(np.abs(p.data) < 5.0)


class TestSchedulers:
    def _make(self):
        p = Parameter(np.zeros(1))
        return SGD([p], lr=1.0)

    def test_cosine_decays_to_eta_min(self):
        opt = self._make()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        lrs = [sched.step() for _ in range(11)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.01, abs=1e-6)
        assert all(lrs[i] >= lrs[i + 1] for i in range(len(lrs) - 1))

    def test_step_lr(self):
        opt = self._make()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[2] == pytest.approx(0.1)
        assert lrs[4] == pytest.approx(0.01)

    def test_multistep_lr(self):
        opt = self._make()
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[2] == pytest.approx(0.5)
        assert lrs[4] == pytest.approx(0.25)

    def test_warmup_cosine(self):
        opt = self._make()
        sched = WarmupCosineLR(opt, warmup_epochs=3, t_max=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < lrs[1] < lrs[2]          # warm-up rises
        assert lrs[-1] < lrs[3]                  # then decays

    def test_scheduler_scales_all_groups(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([{"params": [a], "lr": 1.0}, {"params": [b], "lr": 0.1}], lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.5)
        assert opt.param_groups[1]["lr"] == pytest.approx(0.05)
