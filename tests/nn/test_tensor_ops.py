"""Gradient and value correctness of the Tensor primitives."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, gradcheck


def make(shape, rng, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestArithmetic:
    def test_add_values(self, rng):
        a, b = make((3, 4), rng), make((3, 4), rng)
        out = a + b
        np.testing.assert_allclose(out.data, a.data + b.data)

    def test_add_broadcast_grad(self, rng):
        a = make((3, 4), rng)
        b = make((4,), rng)
        gradcheck(lambda: ((a + b) ** 2).sum(), [a, b])

    def test_sub_and_rsub(self, rng):
        a = make((2, 3), rng)
        out = 1.0 - a
        np.testing.assert_allclose(out.data, 1.0 - a.data)
        gradcheck(lambda: ((1.0 - a) * (1.0 - a)).sum(), [a])

    def test_mul_broadcast_grad(self, rng):
        a = make((2, 3, 4), rng)
        b = make((1, 3, 1), rng)
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self, rng):
        a = make((3, 3), rng)
        b = Tensor(np.abs(rng.normal(size=(3, 3))) + 1.0, requires_grad=True)
        gradcheck(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self, rng):
        b = Tensor(np.abs(rng.normal(size=(4,))) + 1.0, requires_grad=True)
        out = 2.0 / b
        np.testing.assert_allclose(out.data, 2.0 / b.data)

    def test_neg_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
        gradcheck(lambda: ((-a) ** 3).sum(), [a])

    def test_pow_non_scalar_exponent_raises(self, rng):
        a = make((2,), rng)
        with pytest.raises(TypeError):
            a ** a  # noqa: B018

    def test_scalar_right_ops(self, rng):
        a = make((3,), rng)
        np.testing.assert_allclose((2 + a).data, a.data + 2)
        np.testing.assert_allclose((2 * a).data, a.data * 2)

    def test_comparison_ops_detached(self, rng):
        a = make((4,), rng)
        b = make((4,), rng)
        mask = a > b
        assert not mask.requires_grad
        np.testing.assert_allclose(mask.data, (a.data > b.data).astype(float))


class TestElementwise:
    def test_exp_log_sqrt_abs(self, rng):
        a = Tensor(np.abs(rng.normal(size=(4, 4))) + 0.5, requires_grad=True)
        gradcheck(lambda: a.exp().sum(), [a])
        gradcheck(lambda: a.log().sum(), [a])
        gradcheck(lambda: a.sqrt().sum(), [a])
        b = Tensor(rng.normal(size=(4, 4)) + 3.0, requires_grad=True)
        gradcheck(lambda: b.abs().sum(), [b])

    def test_relu_forward_backward(self, rng):
        a = make((5, 5), rng)
        out = a.relu()
        assert np.all(out.data >= 0)
        gradcheck(lambda: (a.relu() * a.relu()).sum(), [a])

    def test_sigmoid_tanh(self, rng):
        a = make((3, 3), rng)
        gradcheck(lambda: a.sigmoid().sum(), [a])
        gradcheck(lambda: a.tanh().sum(), [a])

    def test_clamp_values_and_grad_mask(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        out = a.clamp(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, -0.5, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0])

    def test_clamp_one_sided(self, rng):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        np.testing.assert_allclose(a.clamp(low=0.0).data, [0.0, 3.0])
        np.testing.assert_allclose(a.clamp(high=1.0).data, [-2.0, 1.0])

    def test_round_ste_identity_gradient(self):
        a = Tensor(np.array([0.2, 0.7, -1.4]), requires_grad=True)
        out = a.round_ste()
        np.testing.assert_allclose(out.data, [0.0, 1.0, -1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0, 1.0])

    def test_floor_ste(self):
        a = Tensor(np.array([0.9, -0.1]), requires_grad=True)
        out = a.floor_ste()
        np.testing.assert_allclose(out.data, [0.0, -1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_scale_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = a.scale_grad(0.25)
        np.testing.assert_allclose(out.data, a.data)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 0.25])

    def test_where_and_maximum_minimum(self, rng):
        a = make((6,), rng)
        b = make((6,), rng)
        cond = a.data > 0
        out = a.where(cond, b)
        np.testing.assert_allclose(out.data, np.where(cond, a.data, b.data))
        gradcheck(lambda: a.maximum(b).sum(), [a, b])
        gradcheck(lambda: a.minimum(b).sum(), [a, b])


class TestReductions:
    def test_sum_axes(self, rng):
        a = make((2, 3, 4), rng)
        np.testing.assert_allclose(a.sum().data, a.data.sum())
        np.testing.assert_allclose(a.sum(axis=1).data, a.data.sum(axis=1))
        np.testing.assert_allclose(a.sum(axis=(0, 2), keepdims=True).data,
                                   a.data.sum(axis=(0, 2), keepdims=True))
        gradcheck(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean_and_var(self, rng):
        a = make((3, 5), rng)
        np.testing.assert_allclose(a.mean(axis=0).data, a.data.mean(axis=0))
        np.testing.assert_allclose(a.var(axis=1).data, a.data.var(axis=1), rtol=1e-10)
        gradcheck(lambda: a.var(axis=0).sum(), [a])

    def test_max_min(self, rng):
        a = make((4, 6), rng)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))
        np.testing.assert_allclose(a.min(axis=0).data, a.data.min(axis=0))
        gradcheck(lambda: a.max(axis=1).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapes:
    def test_reshape_transpose(self, rng):
        a = make((2, 3, 4), rng)
        gradcheck(lambda: (a.reshape(6, 4).transpose() ** 2).sum(), [a])

    def test_swapaxes_expand_squeeze(self, rng):
        a = make((2, 1, 3), rng)
        assert a.swapaxes(0, 2).shape == (3, 1, 2)
        assert a.squeeze(1).shape == (2, 3)
        assert a.expand_dims(0).shape == (1, 2, 1, 3)
        gradcheck(lambda: (a.squeeze(1).expand_dims(2) ** 2).sum(), [a])

    def test_broadcast_to(self, rng):
        a = make((1, 3), rng)
        out = a.broadcast_to((4, 3))
        assert out.shape == (4, 3)
        gradcheck(lambda: (a.broadcast_to((4, 3)) ** 2).sum(), [a])

    def test_pad_and_getitem(self, rng):
        a = make((2, 3), rng)
        padded = a.pad(((1, 1), (0, 2)), value=0.0)
        assert padded.shape == (4, 5)
        gradcheck(lambda: (a.pad(((1, 1), (0, 2))) ** 2).sum(), [a])
        gradcheck(lambda: (a[0:1, 1:] ** 2).sum(), [a])

    def test_concatenate_and_stack(self, rng):
        a, b = make((2, 3), rng), make((2, 3), rng)
        cat = Tensor.concatenate([a, b], axis=0)
        assert cat.shape == (4, 3)
        stacked = Tensor.stack([a, b], axis=1)
        assert stacked.shape == (2, 2, 3)
        gradcheck(lambda: (Tensor.concatenate([a, b], axis=1) ** 2).sum(), [a, b])


class TestMatmul:
    def test_2d(self, rng):
        a, b = make((3, 4), rng), make((4, 5), rng)
        np.testing.assert_allclose(a.matmul(b).data, a.data @ b.data)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_vector_cases(self, rng):
        a, b = make((4,), rng), make((4,), rng)
        gradcheck(lambda: a.matmul(b), [a, b])
        m = make((4, 5), rng)
        gradcheck(lambda: a.matmul(m).sum(), [a, m])
        gradcheck(lambda: (m.transpose().matmul(a) ** 2).sum(), [a, m])

    def test_batched_broadcast(self, rng):
        a = make((2, 1, 3, 4), rng)
        b = make((5, 4, 6), rng)
        out = a.matmul(b)
        assert out.shape == (2, 5, 3, 6)
        gradcheck(lambda: (a.matmul(b) ** 2).sum(), [a, b])
