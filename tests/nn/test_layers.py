"""Layer modules: shapes, gradients, BatchNorm statistics, pooling, dropout."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLinearConv:
    def test_linear_shapes_and_bias(self, rng):
        layer = nn.Linear(6, 4)
        out = layer(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)
        layer_nobias = nn.Linear(6, 4, bias=False)
        assert layer_nobias.bias is None

    def test_linear_matches_manual(self, rng):
        layer = nn.Linear(5, 2)
        x = rng.normal(size=(4, 5))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)

    def test_conv_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = layer(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_invalid_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_conv_backward_updates_weight(self, rng):
        layer = nn.Conv2d(2, 3, 3, padding=1, bias=True)
        out = layer(Tensor(rng.normal(size=(1, 2, 4, 4))))
        (out * out).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_extra_repr(self):
        assert "k=" in nn.Conv2d(1, 2, 3).extra_repr()
        assert "in=" in nn.Linear(1, 2).extra_repr()


class TestActivationsPooling:
    def test_relu6(self):
        layer = nn.ReLU6()
        out = layer(Tensor(np.array([-1.0, 3.0, 9.0])))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_identity_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert nn.Identity()(x) is x
        assert nn.Flatten()(x).shape == (2, 12)

    def test_pool_modules(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.GlobalAvgPool2d()(x).shape == (2, 3)

    def test_dropout_respects_training_flag(self, rng):
        layer = nn.Dropout(0.5, seed=0)
        x = Tensor(np.ones((8, 8)))
        layer.training = True
        assert np.any(layer(x).data == 0.0)
        layer.training = False
        np.testing.assert_allclose(layer(x).data, x.data)


class TestBatchNorm:
    def test_normalises_in_training(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-3)

    def test_running_stats_update_and_eval(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(loc=1.0, size=(16, 2, 4, 4)))
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)
        bn.eval()
        out_eval = bn(Tensor(rng.normal(size=(4, 2, 4, 4))))
        assert out_eval.shape == (4, 2, 4, 4)
        # eval output uses running stats, so it is deterministic w.r.t. them
        assert float(bn.num_batches_tracked[0]) == 1.0

    def test_affine_parameters_learnable(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 3, 2, 2)), requires_grad=True)
        (bn(x) ** 2).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_no_affine(self, rng):
        bn = nn.BatchNorm2d(3, affine=False)
        assert bn.weight is None
        out = bn(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 3, 4, 4)

    def test_batchnorm1d_shapes(self, rng):
        bn = nn.BatchNorm1d(5)
        assert bn(Tensor(rng.normal(size=(6, 5)))).shape == (6, 5)
        assert bn(Tensor(rng.normal(size=(6, 5, 3)))).shape == (6, 5, 3)

    def test_gradcheck_small(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(3, 2, 2, 2)), requires_grad=True)
        nn.gradcheck(lambda: (bn(x) ** 2).sum(), [x, bn.weight, bn.bias], atol=1e-4)
