"""Module registration, traversal, state_dict round-trips, containers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Module, ModuleList, Parameter, Sequential, Tensor


class Small(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.fc2 = nn.Linear(8, 2)
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_named_parameters_and_modules(self):
        model = Small()
        names = dict(model.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names
        module_names = [name for name, _ in model.named_modules()]
        assert "" in module_names and "fc1" in module_names

    def test_parameters_count(self):
        model = Small()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers(self):
        model = Small()
        buffers = dict(model.named_buffers())
        assert "counter" in buffers

    def test_zero_grad(self):
        model = Small()
        out = model(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Small()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_apply(self):
        model = Small()
        seen = []
        model.apply(lambda m: seen.append(type(m).__name__))
        assert "Linear" in seen and "Small" in seen

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_round_trip(self):
        model_a, model_b = Small(), Small()
        state = model_a.state_dict()
        model_b.load_state_dict(state)
        for (name_a, p_a), (name_b, p_b) in zip(model_a.named_parameters(),
                                                model_b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(p_a.data, p_b.data)

    def test_buffer_round_trip(self):
        model_a, model_b = Small(), Small()
        model_a.counter[...] = 7.0
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(model_b._buffers["counter"], [7.0])

    def test_shape_mismatch_raises(self):
        model = Small()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_unknown_key_strict(self):
        model = Small()
        state = model.state_dict()
        state["nonexistent"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        model.load_state_dict(state, strict=False)  # tolerated


class TestContainers:
    def test_sequential_forward_and_indexing(self, rng):
        seq = Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)
        out = seq(Tensor(rng.normal(size=(4, 3))))
        assert out.shape == (4, 2)

    def test_sequential_append(self):
        seq = Sequential(nn.Linear(2, 2))
        seq.append(nn.ReLU())
        assert len(seq) == 2

    def test_module_list(self):
        blocks = ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(blocks) == 3
        assert len(list(blocks)) == 3
        with pytest.raises(RuntimeError):
            blocks(Tensor(np.ones((1, 2))))

    def test_module_list_parameters_registered(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])

            def forward(self, x):
                for item in self.items:
                    x = item(x)
                return x

        holder = Holder()
        assert len(holder.parameters()) == 4
        assert holder(Tensor(np.ones((1, 2)))).shape == (1, 2)
