"""Correctness of functional ops: unfold/fold, conv2d, pooling, losses."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, functional as F, gradcheck


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Direct-loop reference convolution."""
    n, c_in, h, wid = x.shape
    c_out, _, kh, kw = w.shape
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wid + 2 * padding - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for b_i in range(n):
        for oc in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x_pad[b_i, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b_i, oc, i, j] = np.sum(patch * w[oc])
            if b is not None:
                out[b_i, oc] += b[oc]
    return out


class TestUnfold:
    def test_unfold_shape_and_values(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 5, 5)))
        cols = F.unfold(x, 3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 25)
        # centre patch of first image equals manual slice
        manual = np.pad(x.data, ((0, 0), (0, 0), (1, 1), (1, 1)))[0, :, 2:5, 2:5].reshape(-1)
        col_index = 1 * 5 + 1  # output position (1, 1)
        np.testing.assert_allclose(cols.data[0, :, col_index + 5 + 1], manual, rtol=1e-12)

    def test_unfold_backward_matches_fold(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        cols = F.unfold(x, 2, stride=2)
        upstream = rng.normal(size=cols.shape)
        cols.backward(upstream)
        expected = F.fold_grad(upstream, x.shape, 2, stride=2)
        np.testing.assert_allclose(x.grad, expected)

    def test_unfold_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        gradcheck(lambda: (F.unfold(x, 3, stride=1, padding=1) ** 2).sum(), [x])

    def test_unfold_nlk_layout_matches_transposed_nkl(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)))
        nkl = F.unfold(x, 3, stride=2, padding=1)
        nlk = F.unfold(x, 3, stride=2, padding=1, layout="nlk")
        np.testing.assert_array_equal(nlk.data.transpose(0, 2, 1), nkl.data)

    def test_unfold_nlk_backward_matches_nkl(self, rng):
        """The col2im scatter-add must be layout-agnostic."""
        upstream_nkl = rng.normal(size=(1, 2 * 4, 4))
        x1 = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        F.unfold(x1, 2, stride=2).backward(upstream_nkl)
        x2 = Tensor(x1.data, requires_grad=True)
        F.unfold(x2, 2, stride=2, layout="nlk").backward(
            upstream_nkl.transpose(0, 2, 1))
        np.testing.assert_allclose(x2.grad, x1.grad)

    def test_unfold_unknown_layout_raises(self, rng):
        with pytest.raises(ValueError):
            F.unfold(Tensor(rng.normal(size=(1, 1, 4, 4))), 2, layout="bogus")

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(7, 3, 2, 0) == 3


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        b = Tensor(rng.normal(size=(4,)))
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        ref = naive_conv2d(x.data, w.data, b.data, stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-10, atol=1e-10)

    def test_grouped_matches_per_group_naive(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(6, 2, 3, 3)))
        out = F.conv2d(x, w, None, padding=1, groups=2)
        ref0 = naive_conv2d(x.data[:, :2], w.data[:3], padding=1)
        ref1 = naive_conv2d(x.data[:, 2:], w.data[3:], padding=1)
        np.testing.assert_allclose(out.data, np.concatenate([ref0, ref1], axis=1),
                                   rtol=1e-10, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_group_divisibility_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, groups=2)

    def test_conv_gradcheck_with_bias(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        gradcheck(lambda: (F.conv2d(x, w, b, padding=1) ** 2).sum(), [x, w, b],
                  atol=1e-4)


class TestPooling:
    def test_max_pool_values(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        out = F.max_pool2d(x, 2)
        expected = x.data.reshape(1, 2, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_avg_pool_values(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        out = F.avg_pool2d(x, 2)
        expected = x.data.reshape(1, 2, 2, 2, 2, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_max_pool_with_stride_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 7, 7)))
        out = F.max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (2, 3, 4, 4)

    def test_pool_gradchecks(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        gradcheck(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x])
        gradcheck(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(3, 5, 4, 4)))
        out = F.global_avg_pool2d(x)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))


class TestSoftmaxAndLosses:
    def test_log_softmax_normalises(self, rng):
        x = Tensor(rng.normal(size=(4, 7)) * 10)
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-10)
        assert np.all(probs >= 0)

    def test_log_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.log_softmax(Tensor(x)).data
        b = F.log_softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -np.mean(log_probs[np.arange(6), labels])
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        labels = rng.integers(0, 5, size=3)
        gradcheck(lambda: F.cross_entropy(logits, labels), [logits])

    def test_label_smoothing_increases_loss_of_confident_model(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        labels = np.array([0])
        plain = F.cross_entropy(logits, labels).item()
        smoothed = F.cross_entropy(logits, labels, label_smoothing=0.2).item()
        assert smoothed > plain

    def test_nll_loss(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = rng.integers(0, 3, size=4)
        nll = F.nll_loss(F.log_softmax(logits), labels).item()
        ce = F.cross_entropy(logits, labels).item()
        assert nll == pytest.approx(ce, rel=1e-10)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestDropout:
    def test_identity_in_eval_or_p0(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert F.dropout(x, 0.5, training=False) is x
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.5, training=True)
