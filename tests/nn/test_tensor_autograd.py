"""Graph semantics: accumulation, no_grad, detach, errors."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, is_grad_enabled, no_grad


class TestGraph:
    def test_gradient_accumulates_over_multiple_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a * 3.0
        out.backward()
        np.testing.assert_allclose(a.grad, [2 * 2.0 + 3.0])

    def test_backward_accumulates_across_calls(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_scalar_or_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()
        (a * 2).backward(np.ones((2, 2)))
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_and_copy(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data  # shares storage
        c = a.copy()
        assert c.data is not a.data

    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(4))
        assert p.requires_grad

    def test_diamond_graph_gradient(self):
        # f = (a*b) + (a+b); df/da = b + 1, df/db = a + 1
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = Tensor(np.array([5.0]), requires_grad=True)
        ((a * b) + (a + b)).backward()
        np.testing.assert_allclose(a.grad, [6.0])
        np.testing.assert_allclose(b.grad, [4.0])

    def test_long_chain(self):
        a = Tensor(np.array([1.5]), requires_grad=True)
        x = a
        for _ in range(50):
            x = x * 1.01
        x.backward()
        np.testing.assert_allclose(a.grad, [1.01 ** 50], rtol=1e-10)

    def test_item_and_len_and_repr(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        assert len(a) == 1
        assert "Tensor" in repr(a)
        assert Tensor(np.array(3.0)).item() == 3.0

    def test_properties(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.shape == (2, 3)
        assert a.ndim == 2
        assert a.size == 6
        assert a.T.shape == (3, 2)

    def test_mixed_requires_grad_operands(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=False)
        out = (a * b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, b.data)
        assert b.grad is None
