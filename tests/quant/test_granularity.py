"""Granularity enum and scale-shape helpers."""

import pytest

from repro.quant import (Granularity, finer, psum_group_size, psum_scale_shape,
                         weight_group_size, weight_scale_shape)


class TestGranularity:
    def test_parse_strings(self):
        assert Granularity.parse("layer") is Granularity.LAYER
        assert Granularity.parse("Array") is Granularity.ARRAY
        assert Granularity.parse("COLUMN") is Granularity.COLUMN
        assert Granularity.parse(Granularity.COLUMN) is Granularity.COLUMN

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Granularity.parse("row")
        with pytest.raises(TypeError):
            Granularity.parse(3)

    def test_finer(self):
        assert finer(Granularity.LAYER, Granularity.COLUMN) is Granularity.COLUMN
        assert finer(Granularity.ARRAY, Granularity.LAYER) is Granularity.ARRAY

    def test_is_finer_than_layer(self):
        assert not Granularity.LAYER.is_finer_than_layer
        assert Granularity.COLUMN.is_finer_than_layer


class TestScaleShapes:
    def test_weight_scale_shapes(self):
        assert weight_scale_shape("layer", 4, 16) == (1, 1, 1)
        assert weight_scale_shape("array", 4, 16) == (4, 1, 1)
        assert weight_scale_shape("column", 4, 16) == (4, 1, 16)

    def test_psum_scale_shapes(self):
        assert psum_scale_shape("layer", 2, 4, 16) == (1, 1, 1, 1, 1)
        assert psum_scale_shape("array", 2, 4, 16) == (2, 4, 1, 1, 1)
        assert psum_scale_shape("column", 2, 4, 16) == (2, 4, 1, 1, 16)

    def test_group_sizes_partition_elements(self):
        n_arrays, rows, oc = 3, 32, 8
        total = n_arrays * rows * oc
        for granularity, expected_groups in [("layer", 1), ("array", n_arrays),
                                             ("column", n_arrays * oc)]:
            shape = weight_scale_shape(granularity, n_arrays, oc)
            n_groups = shape[0] * shape[1] * shape[2]
            assert n_groups == expected_groups
            assert weight_group_size(granularity, n_arrays, rows, oc) * n_groups == total

    def test_psum_group_sizes(self):
        splits, arrays, oc, samples = 2, 3, 8, 10
        total = splits * arrays * oc * samples
        assert psum_group_size("layer", splits, arrays, oc, samples) == total
        assert psum_group_size("array", splits, arrays, oc, samples) == oc * samples
        assert psum_group_size("column", splits, arrays, oc, samples) == samples
