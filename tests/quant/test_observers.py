"""PTQ calibration observers."""

import numpy as np
import pytest

from repro.quant import MeanAbsObserver, MinMaxObserver, PercentileObserver


class TestMinMax:
    def test_scale_covers_max(self, rng):
        obs = MinMaxObserver(bits=4, signed=True)
        values = rng.normal(size=1000) * 3.0
        obs.observe(values)
        scale = obs.compute_scale().reshape(())
        assert scale * 7 >= np.abs(values).max() - 1e-9

    def test_running_max_across_batches(self, rng):
        obs = MinMaxObserver(bits=4)
        obs.observe(np.array([1.0]))
        obs.observe(np.array([10.0]))
        assert obs.compute_scale().reshape(()) == pytest.approx(10.0 / 7)

    def test_unsigned_uses_max_only(self):
        obs = MinMaxObserver(bits=3, signed=False)
        obs.observe(np.array([0.0, 2.0, 7.0]))
        assert obs.compute_scale().reshape(()) == pytest.approx(1.0)

    def test_per_group(self, rng):
        obs = MinMaxObserver(bits=4, group_shape=(2, 1))
        obs.observe(np.array([[1.0, 2.0], [10.0, 20.0]]))
        scale = obs.compute_scale()
        assert scale.shape == (2, 1)
        assert scale[1, 0] > scale[0, 0]

    def test_unobserved_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver(4).compute_scale()

    def test_incompatible_group_shape_raises(self):
        obs = MinMaxObserver(4, group_shape=(2, 1, 1, 1))
        with pytest.raises(ValueError):
            obs.observe(np.zeros((3, 3)))


class TestPercentile:
    def test_clips_outliers(self, rng):
        values = rng.normal(size=10000)
        values[0] = 1000.0
        minmax = MinMaxObserver(bits=4)
        minmax.observe(values)
        pct = PercentileObserver(bits=4, percentile=99.0)
        pct.observe(values)
        assert pct.compute_scale().reshape(()) < minmax.compute_scale().reshape(())

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(4, percentile=0.0)


class TestMeanAbs:
    def test_matches_lsq_init_rule(self, rng):
        values = rng.normal(size=5000)
        obs = MeanAbsObserver(bits=4, signed=True)
        obs.observe(values)
        expected = 2 * np.mean(np.abs(values)) / np.sqrt(7)
        assert obs.compute_scale().reshape(()) == pytest.approx(expected, rel=1e-6)

    def test_accumulates_across_batches(self, rng):
        a, b = rng.normal(size=100), rng.normal(size=100)
        obs = MeanAbsObserver(bits=4)
        obs.observe(a)
        obs.observe(b)
        expected = 2 * np.mean(np.abs(np.concatenate([a, b]))) / np.sqrt(7)
        assert obs.compute_scale().reshape(()) == pytest.approx(expected, rel=1e-6)
