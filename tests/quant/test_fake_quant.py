"""Uniform fake-quantization primitives."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.quant import (fake_quantize, fake_quantize_tensor, quant_range,
                         quantization_error, quantize_to_int)


class TestQuantRange:
    def test_signed_ranges(self):
        assert quant_range(4, signed=True).qmin == -8
        assert quant_range(4, signed=True).qmax == 7
        assert quant_range(2, signed=True).n_levels == 4

    def test_unsigned_ranges(self):
        rng = quant_range(3, signed=False)
        assert (rng.qmin, rng.qmax) == (0, 7)

    def test_binary_signed_special_case(self):
        rng = quant_range(1, signed=True)
        assert (rng.qmin, rng.qmax) == (-1, 1)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quant_range(0)

    def test_clamp(self):
        rng = quant_range(3, signed=True)
        np.testing.assert_allclose(rng.clamp(np.array([-10, 0, 10])), [-4, 0, 3])


class TestFakeQuantize:
    def test_roundtrip_on_grid_points_is_exact(self):
        scale = 0.5
        values = np.array([-2.0, -0.5, 0.0, 1.0, 1.5])
        out = fake_quantize(values, scale, bits=4, signed=True)
        np.testing.assert_allclose(out, values)

    def test_clipping(self):
        out = fake_quantize(np.array([100.0, -100.0]), 1.0, bits=4, signed=True)
        np.testing.assert_allclose(out, [7.0, -8.0])

    def test_quantize_to_int_values(self):
        codes = quantize_to_int(np.array([0.24, 0.26, -0.9]), 0.5, bits=4)
        np.testing.assert_allclose(codes, [0.0, 1.0, -2.0])

    def test_error_decreases_with_bits(self, rng):
        values = rng.normal(size=1000)
        errors = [quantization_error(values, values.std() / (2 ** (b - 1)), b)
                  for b in (2, 4, 6, 8)]
        assert all(errors[i] > errors[i + 1] for i in range(len(errors) - 1))

    def test_unsigned_never_negative(self, rng):
        values = np.abs(rng.normal(size=100))
        out = fake_quantize(values, 0.1, bits=3, signed=False)
        assert np.all(out >= 0)


class TestFakeQuantizeTensor:
    def test_forward_matches_numpy(self, rng):
        values = rng.normal(size=(4, 4))
        out = fake_quantize_tensor(Tensor(values), 0.3, bits=4)
        np.testing.assert_allclose(out.data, fake_quantize(values, 0.3, 4))

    def test_ste_gradient_inside_range(self):
        x = Tensor(np.array([0.1, 0.2]), requires_grad=True)
        fake_quantize_tensor(x, 0.5, bits=4).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_gradient_zero_outside_range(self):
        x = Tensor(np.array([100.0]), requires_grad=True)
        fake_quantize_tensor(x, 0.5, bits=4).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0])

    def test_per_group_scale_broadcast(self, rng):
        x = Tensor(rng.normal(size=(3, 8)))
        scales = np.array([[0.1], [0.2], [0.4]])
        out = fake_quantize_tensor(x, scales, bits=4)
        assert out.shape == (3, 8)
        for row in range(3):
            np.testing.assert_allclose(out.data[row],
                                       fake_quantize(x.data[row], scales[row, 0], 4))
