"""Weight bit-splitting: reconstruction invariant, ranges, STE behaviour."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.quant import (BitSplitConfig, merge_splits, num_splits, split_ranges,
                         split_signed, split_tensor_ste)


class TestConfig:
    def test_num_splits(self):
        assert num_splits(4, 2) == 2
        assert num_splits(3, 2) == 2
        assert num_splits(3, 3) == 1
        assert num_splits(8, 1) == 8

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            BitSplitConfig(0, 1)
        with pytest.raises(ValueError):
            BitSplitConfig(2, 3)

    def test_shift_factors(self):
        cfg = BitSplitConfig(4, 2)
        np.testing.assert_allclose(cfg.shift_factors, [1.0, 4.0])

    def test_top_bits(self):
        assert BitSplitConfig(3, 2).top_bits == 1
        assert BitSplitConfig(4, 2).top_bits == 2
        assert BitSplitConfig(3, 3).top_bits == 3


class TestSplitMerge:
    @pytest.mark.parametrize("bits,cell", [(4, 2), (3, 2), (3, 3), (8, 1), (3, 1), (2, 2), (6, 4)])
    def test_roundtrip_full_range(self, bits, cell):
        cfg = BitSplitConfig(bits, cell)
        values = np.arange(-(2 ** (bits - 1)), 2 ** (bits - 1))
        splits = split_signed(values, cfg)
        np.testing.assert_array_equal(merge_splits(splits, cfg), values)

    def test_split_values_within_declared_ranges(self, rng):
        cfg = BitSplitConfig(5, 2)
        values = rng.integers(-16, 16, size=(10, 10))
        splits = split_signed(values, cfg)
        for slice_values, (lo, hi) in zip(splits, split_ranges(cfg)):
            assert slice_values.min() >= lo
            assert slice_values.max() <= hi

    def test_lower_slices_unsigned(self, rng):
        cfg = BitSplitConfig(6, 2)
        splits = split_signed(rng.integers(-32, 32, size=100), cfg)
        assert np.all(splits[:-1] >= 0)

    def test_out_of_range_raises(self):
        cfg = BitSplitConfig(3, 2)
        with pytest.raises(ValueError):
            split_signed(np.array([10]), cfg)

    def test_shape_preserved(self, rng):
        cfg = BitSplitConfig(4, 2)
        values = rng.integers(-8, 8, size=(2, 3, 4))
        assert split_signed(values, cfg).shape == (2, 2, 3, 4)


class TestSTE:
    def test_forward_matches_split_signed(self, rng):
        cfg = BitSplitConfig(4, 2)
        values = rng.integers(-8, 8, size=(3, 5)).astype(float)
        t = Tensor(values, requires_grad=True)
        out = split_tensor_ste(t, cfg)
        np.testing.assert_array_equal(out.data, split_signed(values, cfg))

    def test_backward_preserves_total_gradient_magnitude(self, rng):
        """sum_j 2^{jc} * dsplit_j/dw == 1 so shift-added gradients equal upstream."""
        cfg = BitSplitConfig(4, 2)
        values = rng.integers(-8, 8, size=(6,)).astype(float)
        t = Tensor(values, requires_grad=True)
        splits = split_tensor_ste(t, cfg)
        shifts = Tensor(cfg.shift_factors.reshape(-1, 1))
        (splits * shifts).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(values))

    def test_backward_without_shift_distributes_equally(self, rng):
        cfg = BitSplitConfig(4, 2)
        t = Tensor(np.zeros(3), requires_grad=True)
        split_tensor_ste(t, cfg).sum().backward()
        expected = sum(2.0 ** (-j * 2) / 2 for j in range(2))
        np.testing.assert_allclose(t.grad, np.full(3, expected))
