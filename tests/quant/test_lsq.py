"""LSQ quantizer: initialisation, STE forward, scale gradients, granularities."""

import math

import numpy as np
import pytest

from repro.nn import Tensor, gradcheck
from repro.quant import LSQQuantizer, lsq_init_scale
from repro.quant.fake_quant import quant_range


class TestInitialisation:
    def test_init_scale_rule(self, rng):
        values = rng.normal(size=(100,))
        scale = lsq_init_scale(values, qmax=7, group_shape=(1,))
        expected = 2 * np.mean(np.abs(values)) / math.sqrt(7)
        assert scale.reshape(()) == pytest.approx(expected)

    def test_init_per_group(self, rng):
        values = rng.normal(size=(4, 10)) * np.array([[1.0], [2.0], [4.0], [8.0]])
        scale = lsq_init_scale(values, qmax=7, group_shape=(4, 1))
        assert scale.shape == (4, 1)
        assert np.all(np.diff(scale[:, 0]) > 0)  # larger groups -> larger scales

    def test_quantizer_initialises_on_first_forward(self, rng):
        quant = LSQQuantizer(4, signed=True, scale_shape=(1,))
        assert not quant.is_initialized()
        quant(Tensor(rng.normal(size=(10,))))
        assert quant.is_initialized()
        assert quant.scale.data[0] > 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LSQQuantizer(0)

    def test_rank_mismatch_raises(self, rng):
        quant = LSQQuantizer(4, scale_shape=(2, 1, 1, 1))
        with pytest.raises(ValueError):
            quant(Tensor(rng.normal(size=(4, 4))))


class TestForward:
    def test_output_on_quant_grid(self, rng):
        quant = LSQQuantizer(4, signed=True)
        x = Tensor(rng.normal(size=(64,)))
        out = quant(x)
        scale = quant.scale.data.reshape(())
        codes = out.data / scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)
        assert codes.min() >= quant.qmin and codes.max() <= quant.qmax

    def test_unsigned_clamps_negative_to_zero(self):
        quant = LSQQuantizer(4, signed=False)
        out = quant(Tensor(np.array([-1.0, 0.5, 2.0])))
        assert np.all(out.data >= 0)

    def test_quantize_int_consistent_with_forward(self, rng):
        quant = LSQQuantizer(4)
        x = Tensor(rng.normal(size=(32,)))
        fake = quant(x)
        codes, scale = quant.quantize_int(x)
        np.testing.assert_allclose(codes.data * scale.data, fake.data, atol=1e-12)

    def test_per_column_scales_are_independent(self, rng):
        # columns with very different magnitudes get very different scales
        data = rng.normal(size=(2, 1, 3)) * np.array([0.1, 1.0, 10.0]).reshape(1, 1, 3)
        quant = LSQQuantizer(4, scale_shape=(1, 1, 3))
        quant(Tensor(np.broadcast_to(data, (2, 5, 3)).copy()))
        scales = quant.scale.data.reshape(3)
        assert scales[0] < scales[1] < scales[2]


class TestGradients:
    def test_lsq_scale_gradient_formula(self):
        """The composite STE graph must reproduce the analytic LSQ gradient."""
        scale_value = 0.5
        for value, expected in [
            (0.3, round(0.3 / 0.5) - 0.3 / 0.5),   # inside range
            (10.0, 7.0),                            # clipped high -> Qp
            (-10.0, -8.0),                          # clipped low  -> Qn
        ]:
            quant = LSQQuantizer(4, signed=True, grad_scale_override=1.0)
            quant.scale.data = np.array([scale_value])
            quant.initialized[...] = 1.0
            x = Tensor(np.array([value]), requires_grad=True)
            out = quant(x)
            out.sum().backward()
            assert quant.scale.grad[0] == pytest.approx(expected, abs=1e-9)

    def test_input_gradient_is_ste_mask(self):
        quant = LSQQuantizer(4, grad_scale_override=1.0)
        quant.scale.data = np.array([1.0])
        quant.initialized[...] = 1.0
        x = Tensor(np.array([0.4, 100.0, -100.0]), requires_grad=True)
        quant(x).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 0.0])

    def test_grad_scale_reduces_scale_gradient(self, rng):
        x_data = rng.normal(size=(1000,))
        grads = []
        for override in (1.0, 0.01):
            quant = LSQQuantizer(4, grad_scale_override=override)
            x = Tensor(x_data, requires_grad=True)
            quant(x).sum().backward()
            grads.append(abs(quant.scale.grad[0]))
        assert grads[1] < grads[0]

    def test_default_grad_scale_follows_group_size(self, rng):
        quant = LSQQuantizer(4)
        quant.initialize_from(rng.normal(size=(100,)))
        expected = 1.0 / math.sqrt(100 * 7)
        assert quant.grad_scale_for(Tensor(np.zeros(100))) == pytest.approx(expected)

    def test_column_scale_gradients_flow_per_group(self, rng):
        quant = LSQQuantizer(4, scale_shape=(1, 1, 4))
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        quant(x).sum().backward()
        assert quant.scale.grad.shape == (1, 1, 4)
        # each column's scale gradient only depends on that column; perturbing
        # one column's data must leave the others' gradients unchanged
        grad_before = quant.scale.grad.copy()
        quant.scale.grad = None
        x2 = Tensor(np.concatenate([x.data[:, :, :3], x.data[:, :, 3:] * 5], axis=2),
                    requires_grad=True)
        quant(x2).sum().backward()
        np.testing.assert_allclose(quant.scale.grad[0, 0, :3], grad_before[0, 0, :3])


class TestErrorMetric:
    def test_quantization_error_positive_and_small_for_many_bits(self, rng):
        values = rng.normal(size=512)
        q8 = LSQQuantizer(8)
        q2 = LSQQuantizer(2)
        assert q8.quantization_error(values) < q2.quantization_error(values)
