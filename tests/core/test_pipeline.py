"""CIMPipeline: stage list, geometry, adapters, static cache, plan state."""

import numpy as np
import pytest

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.cim.tiling import valid_rows_mask
from repro.core import CIMConv2d, CIMLinear, CIMPipeline, LayerGeometry
from repro.core.pipeline import DEFAULT_STAGES
from repro.nn import Tensor
from repro.nn.tensor import no_grad

EXPECTED_STAGE_NAMES = ["act_quant", "weight_tile_quant", "bit_split",
                        "variation", "mac", "record", "psum_quant",
                        "dequant_shift_add", "bias"]


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


def make_conv(cfg, rng_seed=1, **scheme_kwargs):
    return CIMConv2d(6, 8, 3, padding=1, bias=True,
                     scheme=QuantScheme(**scheme_kwargs), cim_config=cfg,
                     rng=np.random.default_rng(rng_seed))


def make_linear(cfg, rng_seed=2, **scheme_kwargs):
    return CIMLinear(40, 10, scheme=QuantScheme(**scheme_kwargs),
                     cim_config=cfg, rng=np.random.default_rng(rng_seed))


class TestStageList:
    def test_both_layer_kinds_share_the_stage_order(self, cfg):
        conv, lin = make_conv(cfg), make_linear(cfg)
        assert [s.name for s in conv.pipeline.stages] == EXPECTED_STAGE_NAMES
        assert [s.name for s in lin.pipeline.stages] == EXPECTED_STAGE_NAMES
        assert [cls().name for cls in DEFAULT_STAGES] == EXPECTED_STAGE_NAMES

    def test_forward_is_pipeline_run(self, rng, cfg):
        """The layers own no stage math: forward delegates to the pipeline."""
        conv = make_conv(cfg)
        conv.eval()
        x = Tensor(np.abs(rng.normal(size=(2, 6, 6, 6))))
        np.testing.assert_array_equal(conv(x).data, conv.pipeline.run(x).data)


class TestGeometry:
    def test_conv_geometry_fields(self, cfg):
        conv = make_conv(cfg)
        g = conv.geometry
        assert isinstance(g, LayerGeometry)
        assert g.has_spatial and g.layer_type == "conv2d"
        assert g.in_features == 6 * 3 * 3
        assert g.out_channels == 8
        assert g.n_arrays == conv.mapping.n_arrays_row
        assert g.pad_rows == g.n_arrays * g.rows_per_array - g.in_features

    def test_linear_geometry_fields(self, cfg):
        lin = make_linear(cfg)
        g = lin.geometry
        assert not g.has_spatial and g.layer_type == "linear"
        assert g.in_features == 40 and g.out_channels == 10

    def test_valid_rows_mask_is_cached_and_correct(self):
        """The (A, R, 1) mask is built once (vectorised) and shared — the seed
        rebuilt it with a Python loop over tiles on every call."""
        cfg = CIMConfig(array_rows=30, array_cols=32, cell_bits=2)
        conv = CIMConv2d(6, 8, 3, scheme=QuantScheme(), cim_config=cfg,
                         rng=np.random.default_rng(0))
        first = conv._valid_rows_mask()
        assert first is conv._valid_rows_mask()  # cached object, not a rebuild
        # matches the reference loop-built mask
        reference = np.zeros((conv.mapping.n_arrays_row,
                              conv.mapping.rows_per_array, 1))
        for tile in conv.mapping.tiles:
            reference[tile.index, :tile.rows, :] = 1.0
        np.testing.assert_array_equal(first, reference)
        np.testing.assert_array_equal(valid_rows_mask(conv.mapping), reference)

    def test_conv_and_linear_masks_share_one_implementation(self, cfg):
        lin = make_linear(cfg)
        np.testing.assert_array_equal(lin._valid_rows_mask(),
                                      valid_rows_mask(lin.mapping))


class TestStaticCache:
    def _eval_forward(self, layer, x):
        layer.eval()
        with no_grad():
            return layer(x).data.copy()

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    def test_cache_hits_on_repeated_eval_forwards(self, rng, cfg, kind):
        layer = make_conv(cfg) if kind == "conv" else make_linear(cfg)
        shape = (2, 6, 6, 6) if kind == "conv" else (2, 40)
        x = Tensor(np.abs(rng.normal(size=shape)))
        first = self._eval_forward(layer, x)
        hits0, misses0 = layer.pipeline.static_cache_info
        assert misses0 == 1
        second = self._eval_forward(layer, x)
        hits1, misses1 = layer.pipeline.static_cache_info
        assert misses1 == 1 and hits1 > hits0
        np.testing.assert_array_equal(first, second)

    def test_cache_matches_uncached_path(self, rng, cfg):
        """Served-from-cache outputs equal the live recompute bit for bit."""
        layer = make_conv(cfg)
        x = Tensor(np.abs(rng.normal(size=(2, 6, 6, 6))))
        layer.eval()
        live = layer(x).data.copy()        # grads on -> live path
        with no_grad():
            cached = layer(x).data
        np.testing.assert_array_equal(live, cached)

    def test_parameter_update_invalidates_cache(self, rng, cfg):
        layer = make_conv(cfg)
        x = Tensor(np.abs(rng.normal(size=(1, 6, 6, 6))))
        before = self._eval_forward(layer, x)
        layer.weight.data = layer.weight.data + 0.5   # optimizer-style assign
        after = self._eval_forward(layer, x)
        _, misses = layer.pipeline.static_cache_info
        assert misses == 2
        assert not np.allclose(before, after)

    def test_invalidate_static_forces_recompute(self, rng, cfg):
        layer = make_linear(cfg)
        x = Tensor(np.abs(rng.normal(size=(2, 40))))
        self._eval_forward(layer, x)
        layer.pipeline.invalidate_static()
        self._eval_forward(layer, x)
        _, misses = layer.pipeline.static_cache_info
        assert misses == 2

    def test_training_mode_bypasses_cache(self, rng, cfg):
        layer = make_conv(cfg)
        x = Tensor(np.abs(rng.normal(size=(1, 6, 6, 6))), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        assert layer.pipeline.static_cache_info == (0, 0)
        assert layer.weight.grad is not None
        assert not layer.pipeline.static_eligible()

    def test_eval_with_learnable_params_bypasses_cache(self, rng, cfg):
        """Eval + grad tracking + learnable weights must stay on the live
        path, so a later backward through the output remains possible."""
        layer = make_conv(cfg)
        layer.eval()
        layer(Tensor(np.abs(rng.normal(size=(1, 6, 6, 6)))))
        assert layer.pipeline.static_cache_info == (0, 0)

    def test_variation_reuses_cached_splits_but_not_operand(self, rng, cfg):
        """With variation attached, the cached pre-variation cell codes are
        still served; only the perturbed MAC operand is rebuilt per forward."""
        from repro.cim import VariationModel
        layer = make_conv(cfg)
        x = Tensor(np.abs(rng.normal(size=(1, 6, 6, 6))))
        clean = self._eval_forward(layer, x)
        layer.set_variation(VariationModel(sigma=0.1, seed=3))
        layer.eval()
        with no_grad():
            varied = layer(x).data
        hits, misses = layer.pipeline.static_cache_info
        assert misses == 1 and hits >= 1
        assert not np.allclose(clean, varied)


class TestCompileState:
    REQUIRED_KEYS = {"out_channels", "n_arrays", "rows_per_array", "n_splits",
                     "pad_rows", "valid_mask", "mapping", "w_bar", "s_w",
                     "splits", "shift_factors", "w_eff_mat", "bias",
                     "act_scale", "act_qmin", "act_qmax", "psum_quant_enabled",
                     "s_p", "psum_qmin", "psum_qmax", "requant"}

    @pytest.mark.parametrize("kind", ["conv", "linear"])
    def test_stage_list_produces_the_full_plan_state(self, rng, cfg, kind):
        layer = make_conv(cfg) if kind == "conv" else make_linear(cfg)
        shape = (1, 6, 6, 6) if kind == "conv" else (2, 40)
        layer.eval()
        layer(Tensor(np.abs(rng.normal(size=shape))))
        state = layer.pipeline.compile_state()
        assert set(state) == self.REQUIRED_KEYS
        # the bit-split reconstruction invariant survives compilation
        shifts = state["shift_factors"].reshape(-1, 1, 1, 1)
        np.testing.assert_allclose((state["splits"] * shifts).sum(axis=0),
                                   state["w_bar"], atol=0)

    def test_engine_compiles_from_the_stage_state(self, rng, cfg):
        """compile_plan consumes compile_state verbatim (plus the signature)."""
        conv = make_conv(cfg)
        conv.eval()
        x = Tensor(np.abs(rng.normal(size=(1, 6, 6, 6))))
        conv(x)
        plan = engine.compile_conv_plan(conv)
        state = conv.pipeline.compile_state()
        np.testing.assert_array_equal(plan.w_bar, state["w_bar"])
        np.testing.assert_array_equal(plan.splits, state["splits"])
        np.testing.assert_array_equal(plan.w_eff_mat, state["w_eff_mat"])
        np.testing.assert_array_equal(plan.valid_mask, state["valid_mask"])
