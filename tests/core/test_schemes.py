"""Quantization-scheme registry (Table I)."""

import pytest

from repro.cim import QuantScheme
from repro.core import (SCHEME_REGISTRY, all_granularity_combinations, get_scheme,
                        related_work_schemes, table1_rows)
from repro.quant import Granularity


class TestRegistry:
    def test_contains_all_related_works_and_ours(self):
        assert set(SCHEME_REGISTRY) == {"kim", "bai", "saxena_date22",
                                        "saxena_islped23", "ours"}

    def test_table1_kim(self):
        scheme = SCHEME_REGISTRY["kim"].scheme
        assert scheme.weight_granularity is Granularity.LAYER
        assert scheme.psum_granularity is Granularity.LAYER
        assert not scheme.train_from_scratch                  # PTQ
        assert not scheme.learnable_weight_scale
        assert scheme.learnable_psum_scale

    def test_table1_bai(self):
        scheme = SCHEME_REGISTRY["bai"].scheme
        assert scheme.weight_granularity is Granularity.ARRAY
        assert scheme.psum_granularity is Granularity.ARRAY
        assert not scheme.train_from_scratch

    def test_table1_saxena_date22(self):
        scheme = SCHEME_REGISTRY["saxena_date22"].scheme
        assert scheme.weight_granularity is Granularity.LAYER
        assert scheme.psum_granularity is Granularity.ARRAY
        assert scheme.two_stage

    def test_table1_saxena_islped23(self):
        scheme = SCHEME_REGISTRY["saxena_islped23"].scheme
        assert scheme.weight_granularity is Granularity.LAYER
        assert scheme.psum_granularity is Granularity.COLUMN
        assert scheme.two_stage

    def test_table1_ours_is_aligned_single_stage(self):
        scheme = SCHEME_REGISTRY["ours"].scheme
        assert scheme.weight_granularity is Granularity.COLUMN
        assert scheme.psum_granularity is Granularity.COLUMN
        assert scheme.granularity_aligned
        assert scheme.train_from_scratch and not scheme.two_stage
        assert scheme.learnable_weight_scale and scheme.learnable_psum_scale

    def test_only_ours_has_aligned_column_granularity(self):
        aligned_column = [key for key, info in SCHEME_REGISTRY.items()
                          if info.scheme.weight_granularity is Granularity.COLUMN
                          and info.scheme.psum_granularity is Granularity.COLUMN]
        assert aligned_column == ["ours"]

    def test_describe(self):
        assert "column" in SCHEME_REGISTRY["ours"].describe()


class TestHelpers:
    def test_get_scheme_with_overrides(self):
        scheme = get_scheme("ours", weight_bits=3, psum_bits=1)
        assert scheme.weight_bits == 3 and scheme.psum_bits == 1
        assert scheme.weight_granularity is Granularity.COLUMN

    def test_get_scheme_unknown(self):
        with pytest.raises(KeyError):
            get_scheme("unknown")

    def test_related_work_schemes_rebit(self):
        schemes = related_work_schemes(weight_bits=3, act_bits=3, psum_bits=2)
        assert set(schemes) == set(SCHEME_REGISTRY)
        assert all(s.weight_bits == 3 and s.psum_bits == 2 for s in schemes.values())

    def test_all_granularity_combinations(self):
        combos = all_granularity_combinations()
        assert len(combos) == 9
        pairs = {(c.weight_granularity, c.psum_granularity) for c in combos}
        assert len(pairs) == 9

    def test_table1_rows_structure(self):
        rows = table1_rows()
        assert len(rows) == len(SCHEME_REGISTRY)
        ours = [r for r in rows if "Ours" in r["scheme"]][0]
        assert ours["weight_granularity"] == "column"
        assert ours["psum_granularity"] == "column"
        assert ours["psum_learnable_scale"] == "yes"
        kim = [r for r in rows if "Kim" in r["scheme"]][0]
        assert "PTQ" in kim["psum_train_from_scratch"]
