"""FP -> CIM model conversion and whole-model helpers."""

import numpy as np
import pytest

from repro import nn
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import (CIMConv2d, CIMLinear, PartialSumRecorder, apply_variation,
                        attach_recorders, cim_layers, convert_to_cim, model_mappings,
                        model_overhead, scale_parameters, set_psum_quant_enabled,
                        weight_parameters)
from repro.models import SimpleCNN, TinyCNN
from repro.nn import Tensor


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


class TestConvert:
    def test_replaces_all_conv_and_linear(self, cfg):
        model = SimpleCNN(num_classes=5, channels=(8, 16))
        convert_to_cim(model, QuantScheme(), cfg)
        layers = dict(cim_layers(model))
        assert len(layers) == 3  # 2 convs + classifier
        assert all(isinstance(l, (CIMConv2d, CIMLinear)) for l in layers.values())

    def test_weights_copied(self, cfg, rng):
        model = TinyCNN(num_classes=3, width=4)
        originals = {name: p.data.copy() for name, p in model.named_parameters()
                     if name.endswith("weight") and p.ndim == 4}
        convert_to_cim(model, QuantScheme(), cfg)
        converted = {name: p.data for name, p in model.named_parameters()
                     if name.endswith("weight") and p.data.ndim == 4}
        for name, original in originals.items():
            np.testing.assert_allclose(converted[name], original)

    def test_first_conv_input_not_quantized_by_default(self, cfg):
        model = TinyCNN(num_classes=3, width=4)
        convert_to_cim(model, QuantScheme(), cfg)
        convs = [l for _, l in cim_layers(model) if isinstance(l, CIMConv2d)]
        assert convs[0].act_quant is None
        assert convs[1].act_quant is not None

    def test_converted_model_close_to_fp_at_high_precision(self, cfg, rng):
        model = TinyCNN(num_classes=3, width=4, seed=1)
        model.eval()
        x = Tensor(np.abs(rng.normal(size=(2, 3, 8, 8))))
        fp_out = model(x).data.copy()
        convert_to_cim(model, QuantScheme(weight_bits=8, act_bits=8, psum_bits=8,
                                          quantize_psum=True), cfg.with_(cell_bits=8))
        model.eval()
        quant_out = model(x).data
        # 8-bit everywhere: outputs should stay close to full precision
        assert np.max(np.abs(fp_out - quant_out)) < 0.3

    def test_idempotent_on_cim_layers(self, cfg):
        model = TinyCNN(num_classes=3, width=4, scheme=QuantScheme(), cim_config=cfg)
        before = len(list(cim_layers(model)))
        convert_to_cim(model, QuantScheme(), cfg)
        assert len(list(cim_layers(model))) == before


class TestModelHelpers:
    def _model(self, cfg):
        return TinyCNN(num_classes=3, width=4, scheme=QuantScheme(), cim_config=cfg)

    def test_set_psum_quant_enabled(self, cfg):
        model = self._model(cfg)
        count = set_psum_quant_enabled(model, False)
        assert count == 3
        assert all(not layer.psum_quant_enabled for _, layer in cim_layers(model))

    def test_apply_variation_and_clear(self, cfg):
        model = self._model(cfg)
        apply_variation(model, VariationModel(sigma=0.1, seed=0))
        assert all(layer.variation is not None for _, layer in cim_layers(model))
        apply_variation(model, None)
        assert all(layer.variation is None for _, layer in cim_layers(model))

    def test_attach_recorders_names_layers(self, cfg, rng):
        model = self._model(cfg)
        recorder = PartialSumRecorder()
        attach_recorders(model, recorder)
        model(Tensor(np.abs(rng.normal(size=(1, 3, 8, 8)))))
        assert len(recorder.layers()) == 3

    def test_model_mappings_and_overhead(self, cfg):
        model = self._model(cfg)
        mappings = model_mappings(model)
        assert len(mappings) == 3
        scheme = QuantScheme(psum_granularity="column")
        overhead = model_overhead(model, scheme)
        assert all(o.multiplications >= 1 for o in overhead.values())

    def test_parameter_partition(self, cfg):
        model = self._model(cfg)
        scales = scale_parameters(model)
        weights = weight_parameters(model)
        assert len(scales) > 0 and len(weights) > 0
        total = len(model.parameters())
        # requires_grad params are partitioned without overlap
        assert len(scales) + len(weights) == len([p for p in model.parameters()
                                                  if p.requires_grad])
        assert not (set(map(id, scales)) & set(map(id, weights)))
