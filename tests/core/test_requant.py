"""Property tests of the fixed-point requantization primitives.

:func:`repro.core.requant.requantize` claims *exact* integer semantics:
``round_half_away(acc * M0 / 2**shift)`` with no float intermediate.  These
tests hold it to that claim against an arbitrary-precision
:class:`fractions.Fraction` oracle, including the int32/int64 boundary
magnitudes where any hidden float64 pass-through would corrupt low bits.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.requant import (INT32_MAX, INT32_MIN, MAX_SHIFT,
                                OUTPUT_FRACTION_BITS, quantize_multiplier,
                                quantize_multipliers, requantize,
                                requantize_up)


def exact_requant(acc: int, m0: int, shift: int) -> int:
    """Arbitrary-precision oracle: round-half-away of ``acc * m0 / 2**shift``."""
    q = Fraction(int(acc) * int(m0), 2 ** shift)
    mag = int(abs(q) + Fraction(1, 2))           # floor(|q| + 1/2)
    return -mag if q < 0 else mag


def exact_requant_up(acc: int, m0: int, shift: int) -> int:
    """Arbitrary-precision oracle: ``floor(acc * m0 / 2**shift + 1/2)``."""
    q = Fraction(int(acc) * int(m0), 2 ** shift) + Fraction(1, 2)
    return q.numerator // q.denominator          # exact floor


class TestRequantize:
    def test_matches_exact_rational_on_random_inputs(self):
        rng = np.random.default_rng(7)
        for shift in (0, 1, 7, 19, 31, MAX_SHIFT):
            acc = rng.integers(-2 ** 30, 2 ** 30, size=256)
            m0 = rng.integers(0, 2 ** 20, size=256)
            got = requantize(acc, m0, shift)
            want = [exact_requant(a, m, shift) for a, m in zip(acc, m0)]
            np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))

    def test_rounds_half_away_from_zero(self):
        # .5 boundaries move away from zero in both directions — the
        # hardware convention, NOT numpy's round-half-even.
        acc = np.array([1, -1, 3, -3, 5, -5])
        np.testing.assert_array_equal(requantize(acc, 1, 1),
                                      [1, -1, 2, -2, 3, -3])

    def test_no_float_intermediate_at_int32_extremes(self):
        # (2**31 - 1)**2 is odd and > 2**53, so any float64 pass-through
        # would round the product and corrupt the result.
        prod = (2 ** 31 - 1) ** 2
        assert int(requantize(INT32_MAX, INT32_MAX, 0)) == prod
        assert float(prod) != prod                     # the trap is real
        assert int(requantize(INT32_MAX, INT32_MAX, 1)) == \
            exact_requant(INT32_MAX, INT32_MAX, 1)
        assert int(requantize(INT32_MIN, INT32_MAX, 3)) == \
            exact_requant(INT32_MIN, INT32_MAX, 3)

    def test_max_shift_keeps_int64_headroom(self):
        # the documented invariant behind MAX_SHIFT: |acc * M0| + 2**(shift-1)
        # fits int64 for int32 acc and mantissa at the largest shift.
        got = requantize(INT32_MAX, INT32_MAX, MAX_SHIFT)
        assert int(got) == exact_requant(INT32_MAX, INT32_MAX, MAX_SHIFT)

    def test_saturation_bounds(self):
        acc = np.array([-1000, -5, -4, 0, 3, 5, 1000])
        got = requantize(acc, 1, 0, -4, 3)
        np.testing.assert_array_equal(got, [-4, -4, -4, 0, 3, 3, 3])
        np.testing.assert_array_equal(requantize(acc, 1, 0, -128, 127),
                                      np.clip(acc, -128, 127))

    def test_per_element_shift_array(self):
        # the ADC divide uses per-column shifts; broadcasting must apply
        # each element's own rounding offset.
        acc = np.array([5, 5, 5])
        shift = np.array([0, 1, 2])
        np.testing.assert_array_equal(requantize(acc, 1, shift), [5, 3, 1])

    def test_shift_zero_is_identity_times_m0(self):
        acc = np.array([-3, 0, 7])
        np.testing.assert_array_equal(requantize(acc, 9, 0), acc * 9)

    @pytest.mark.parametrize("shift", [-1, MAX_SHIFT + 1])
    def test_shift_out_of_range_raises(self, shift):
        with pytest.raises(ValueError, match="shift"):
            requantize(np.array([1]), 1, shift)

    def test_lone_saturation_bound_raises(self):
        with pytest.raises(ValueError, match="both qmin and qmax"):
            requantize(np.array([1]), 1, 0, qmin=-4)


class TestRequantizeUp:
    def test_matches_exact_rational_on_random_inputs(self):
        rng = np.random.default_rng(13)
        for shift in (0, 1, 7, 19, 31, MAX_SHIFT):
            acc = rng.integers(-2 ** 30, 2 ** 30, size=256)
            m0 = rng.integers(0, 2 ** 20, size=256)
            got = requantize_up(acc, m0, shift)
            want = [exact_requant_up(a, m, shift) for a, m in zip(acc, m0)]
            np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))

    def test_rounds_halves_toward_plus_infinity(self):
        # the sign-uniform convention of the executed ADC stage: every .5
        # boundary moves up, for negatives too (unlike requantize).
        acc = np.array([1, -1, 3, -3, 5, -5])
        np.testing.assert_array_equal(requantize_up(acc, 1, 1),
                                      [1, 0, 2, -1, 3, -2])

    def test_agrees_with_requantize_off_ties(self):
        # away from exact .5 boundaries the two conventions are identical
        rng = np.random.default_rng(5)
        acc = rng.integers(-2 ** 20, 2 ** 20, size=512)
        m0 = rng.integers(1, 2 ** 10, size=512) * 2 + 1      # odd mantissas
        shift = 9
        prod = acc.astype(object) * m0.astype(object)
        off_tie = np.array([int(p) % (1 << shift) != (1 << (shift - 1))
                            for p in prod])
        np.testing.assert_array_equal(
            requantize_up(acc, m0, shift)[off_tie],
            requantize(acc, m0, shift)[off_tie])

    def test_no_float_intermediate_at_int32_extremes(self):
        assert int(requantize_up(INT32_MAX, INT32_MAX, 0)) == \
            (2 ** 31 - 1) ** 2
        assert int(requantize_up(INT32_MIN, INT32_MAX, 3)) == \
            exact_requant_up(INT32_MIN, INT32_MAX, 3)
        assert int(requantize_up(INT32_MAX, INT32_MAX, MAX_SHIFT)) == \
            exact_requant_up(INT32_MAX, INT32_MAX, MAX_SHIFT)

    def test_saturation_and_per_element_shift(self):
        acc = np.array([-1000, -5, 0, 5, 1000])
        np.testing.assert_array_equal(requantize_up(acc, 1, 0, -4, 3),
                                      [-4, -4, 0, 3, 3])
        np.testing.assert_array_equal(
            requantize_up(np.array([5, 5, 5]), 1, np.array([0, 1, 2])),
            [5, 3, 1])

    @pytest.mark.parametrize("shift", [-1, MAX_SHIFT + 1])
    def test_shift_out_of_range_raises(self, shift):
        with pytest.raises(ValueError, match="shift"):
            requantize_up(np.array([1]), 1, shift)

    def test_lone_saturation_bound_raises(self):
        with pytest.raises(ValueError, match="both qmin and qmax"):
            requantize_up(np.array([1]), 1, 0, qmax=3)


class TestQuantizeMultipliers:
    def test_round_trip_accuracy(self):
        rng = np.random.default_rng(11)
        m = np.exp(rng.uniform(-8, 8, size=128))
        m0, shift = quantize_multipliers(m)
        assert m0.dtype == np.int32 and 0 <= shift <= MAX_SHIFT
        approx = m0.astype(np.float64) * 2.0 ** -shift
        # the shift is normalized on m.max(): error is half a mantissa ulp
        np.testing.assert_allclose(approx, m, atol=2.0 ** -(shift + 1))

    def test_dominant_multiplier_uses_full_mantissa_range(self):
        m0, shift = quantize_multiplier(1.0)
        assert 2 ** 30 <= m0 <= INT32_MAX
        assert abs(m0 * 2.0 ** -shift - 1.0) <= 2.0 ** -31

    def test_scalar_wrapper_matches_array_form(self):
        m0_arr, shift_arr = quantize_multipliers(np.array([0.375]))
        m0, shift = quantize_multiplier(0.375)
        assert (m0, shift) == (int(m0_arr[0]), shift_arr)

    def test_huge_multiplier_raises(self):
        with pytest.raises(ValueError, match="int32"):
            quantize_multipliers(np.array([2.0 ** 33]))

    def test_tiny_multipliers_cap_at_max_shift(self):
        m0, shift = quantize_multipliers(np.array([2.0 ** -40]))
        assert shift == MAX_SHIFT

    @pytest.mark.parametrize("bad", [np.array([]), np.array([0.0]),
                                     np.array([-1.0, 2.0]),
                                     np.array([np.inf]), np.array([np.nan])])
    def test_invalid_inputs_raise(self, bad):
        with pytest.raises(ValueError):
            quantize_multipliers(bad)

    def test_wide_dynamic_range_zeroes_small_mantissas(self):
        # multipliers ~2**31 below the max are unrepresentable under the
        # shared shift; the correct fixed-point statement is a zero mantissa.
        m0, _ = quantize_multipliers(np.array([1.0, 2.0 ** -33]))
        assert m0[1] == 0 and m0[0] > 0


class TestOutputGrid:
    def test_fraction_bits_constant(self):
        # serialized drift bounds and the int golden fixtures are derived
        # for 24 fractional bits; changing the constant invalidates both.
        assert OUTPUT_FRACTION_BITS == 24
