"""CIMConv2d: equivalence, gradients, granularities, variation, tiling."""

import numpy as np
import pytest

from repro import nn
from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import CIMConv2d, PartialSumRecorder
from repro.nn import Tensor
from repro.nn import functional as F


def positive_input(rng, shape):
    """Post-ReLU-like activations (the usual input of a CIM conv layer)."""
    return Tensor(np.abs(rng.normal(size=shape)), requires_grad=True)


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


class TestEquivalence:
    """With partial-sum quantization off, the CIM pipeline must equal a plain
    convolution over the fake-quantized weights and activations."""

    @pytest.mark.parametrize("weight_granularity", ["layer", "array", "column"])
    def test_matches_reference_conv(self, rng, cfg, weight_granularity):
        scheme = QuantScheme(weight_bits=4, act_bits=4, psum_bits=4,
                             weight_granularity=weight_granularity,
                             psum_granularity="column", quantize_psum=False)
        layer = CIMConv2d(6, 8, 3, padding=1, scheme=scheme, cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 6, 6, 6))
        out = layer(x)
        a_int, s_a = layer.act_quant.quantize_int(x)
        ref = F.conv2d(a_int * s_a, layer.reconstructed_weight(), None, padding=1)
        np.testing.assert_allclose(out.data, ref.data, atol=1e-9)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_stride_padding(self, rng, cfg, stride, padding):
        scheme = QuantScheme(quantize_psum=False)
        layer = CIMConv2d(4, 6, 3, stride=stride, padding=padding, scheme=scheme,
                          cim_config=cfg, rng=rng)
        x = positive_input(rng, (1, 4, 7, 7))
        out = layer(x)
        a_int, s_a = layer.act_quant.quantize_int(x)
        ref = F.conv2d(a_int * s_a, layer.reconstructed_weight(), None,
                       stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, ref.data, atol=1e-9)

    def test_im2col_and_kernel_preserving_tilings_agree(self, rng):
        """Both tilings compute the same partial sums, just partitioned differently."""
        scheme = QuantScheme(weight_granularity="layer", psum_granularity="layer",
                             quantize_psum=False)
        x = positive_input(rng, (1, 8, 5, 5))
        outputs = []
        for strategy in ("kernel_preserving", "im2col"):
            cfg = CIMConfig(array_rows=30, array_cols=32, cell_bits=2, tiling=strategy)
            layer = CIMConv2d(8, 4, 3, padding=1, scheme=scheme, cim_config=cfg,
                              rng=np.random.default_rng(7))
            outputs.append(layer(x).data)
        np.testing.assert_allclose(outputs[0], outputs[1], atol=1e-9)

    def test_multi_cell_weight_equals_single_cell(self, rng):
        """Bit-splitting is exact: 1 cell/bit and many bits/cell give the same output."""
        scheme = QuantScheme(weight_bits=4, quantize_psum=False)
        x = positive_input(rng, (1, 4, 5, 5))
        outputs = []
        for cell_bits in (1, 2, 4):
            cfg = CIMConfig(array_rows=64, array_cols=64, cell_bits=cell_bits)
            layer = CIMConv2d(4, 5, 3, padding=1, scheme=scheme, cim_config=cfg,
                              rng=np.random.default_rng(3))
            outputs.append(layer(x).data)
        np.testing.assert_allclose(outputs[0], outputs[1], atol=1e-9)
        np.testing.assert_allclose(outputs[0], outputs[2], atol=1e-9)

    def test_bias_added(self, rng, cfg):
        scheme = QuantScheme(quantize_psum=False)
        layer = CIMConv2d(3, 4, 3, padding=1, bias=True, scheme=scheme, cim_config=cfg,
                          rng=rng)
        x = positive_input(rng, (1, 3, 4, 4))
        without_bias = layer(x).data - layer.bias.data.reshape(1, -1, 1, 1)
        layer_nob = CIMConv2d(3, 4, 3, padding=1, bias=False, scheme=scheme,
                              cim_config=cfg, rng=np.random.default_rng(0))
        layer_nob.weight.data = layer.weight.data.copy()
        np.testing.assert_allclose(without_bias, layer_nob(x).data, atol=1e-9)


class TestQuantizationEffects:
    def test_psum_quantization_changes_output(self, rng, cfg):
        x = positive_input(rng, (2, 6, 6, 6))
        base = QuantScheme(weight_bits=4, act_bits=4, psum_bits=2,
                           weight_granularity="column", psum_granularity="column")
        layer = CIMConv2d(6, 8, 3, padding=1, scheme=base, cim_config=cfg, rng=rng)
        out_quantized = layer(x).data.copy()
        layer.set_psum_quant_enabled(False)
        out_full = layer(x).data
        assert not np.allclose(out_quantized, out_full)

    def test_lower_psum_bits_larger_error(self, rng, cfg):
        x = positive_input(rng, (2, 6, 8, 8))
        errors = {}
        for bits in (1, 3, 6):
            scheme = QuantScheme(weight_bits=4, act_bits=4, psum_bits=bits,
                                 weight_granularity="column", psum_granularity="column")
            layer = CIMConv2d(6, 8, 3, padding=1, scheme=scheme, cim_config=cfg,
                              rng=np.random.default_rng(11))
            quantized = layer(x).data.copy()
            layer.set_psum_quant_enabled(False)
            reference = layer(x).data
            errors[bits] = float(np.mean((quantized - reference) ** 2))
        assert errors[1] > errors[3] > errors[6]

    def test_column_weight_scales_have_column_shape(self, rng, cfg):
        layer = CIMConv2d(6, 8, 3, scheme=QuantScheme(weight_granularity="column"),
                          cim_config=cfg, rng=rng)
        assert layer.weight_quant.scale.shape == (layer.n_arrays, 1, 8)
        layer_l = CIMConv2d(6, 8, 3, scheme=QuantScheme(weight_granularity="layer"),
                            cim_config=cfg, rng=rng)
        assert layer_l.weight_quant.scale.shape == (1, 1, 1)

    def test_psum_scale_shape_matches_granularity(self, rng, cfg):
        for granularity, expected_tail in [("layer", (1, 1, 1, 1, 1)),
                                           ("array", None), ("column", None)]:
            layer = CIMConv2d(6, 8, 3, scheme=QuantScheme(psum_granularity=granularity),
                              cim_config=cfg, rng=rng)
            shape = layer.psum_quant.scale.shape
            if granularity == "layer":
                assert shape == (1, 1, 1, 1, 1)
            elif granularity == "array":
                assert shape == (layer.n_splits, layer.n_arrays, 1, 1, 1)
            else:
                assert shape == (layer.n_splits, layer.n_arrays, 1, 1, 8)

    def test_column_weight_quant_lower_error_than_layer(self, rng, cfg):
        """With range-covering (min-max) scales, finer weight granularity must
        not increase the weight quantization error — the rationale behind
        column-wise weight quantization (Sec. III-A)."""
        weight = rng.normal(size=(8, 6, 3, 3)) * \
            np.linspace(0.1, 2.0, 8).reshape(8, 1, 1, 1)
        errors = {}
        for granularity in ("layer", "column"):
            layer = CIMConv2d(6, 8, 3, scheme=QuantScheme(weight_granularity=granularity,
                                                          quantize_psum=False),
                              cim_config=cfg, rng=rng)
            layer.weight.data = weight.copy()
            # assign min-max scales per group (no clipping), bypassing LSQ init
            tiled = layer._tiled_weight().data
            group_shape = layer.weight_quant._broadcast_group_shape(tiled.shape)
            axes = tuple(i for i, d in enumerate(group_shape) if d == 1)
            bound = np.abs(tiled).max(axis=axes, keepdims=True)
            layer.weight_quant.scale.data = np.maximum(
                bound / layer.weight_quant.qmax, 1e-8).reshape(layer.weight_quant.scale_shape)
            layer.weight_quant.initialized[...] = 1.0
            w_hat = layer.reconstructed_weight().data
            errors[granularity] = float(np.mean((w_hat - weight) ** 2))
        assert errors["column"] <= errors["layer"]


class TestGradients:
    def test_all_parameters_receive_gradients(self, rng, cfg):
        layer = CIMConv2d(4, 6, 3, padding=1, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 4, 5, 5))
        (layer(x) ** 2).sum().backward()
        assert layer.weight.grad is not None and np.any(layer.weight.grad != 0)
        assert layer.weight_quant.scale.grad is not None
        assert layer.act_quant.scale.grad is not None
        assert layer.psum_quant.scale.grad is not None
        assert x.grad is not None

    def test_non_learnable_scales_receive_no_gradient(self, rng, cfg):
        scheme = QuantScheme(learnable_weight_scale=False, learnable_psum_scale=False)
        layer = CIMConv2d(4, 6, 3, scheme=scheme, cim_config=cfg, rng=rng)
        x = positive_input(rng, (1, 4, 5, 5))
        (layer(x) ** 2).sum().backward()
        assert layer.weight_quant.scale.grad is None
        assert layer.psum_quant.scale.grad is None

    def test_quantize_input_false_passes_raw_activations(self, rng, cfg):
        layer = CIMConv2d(3, 4, 3, scheme=QuantScheme(quantize_psum=False),
                          cim_config=cfg, quantize_input=False, rng=rng)
        assert layer.act_quant is None
        x = positive_input(rng, (1, 3, 5, 5))
        ref = F.conv2d(x, layer.reconstructed_weight(), None)
        np.testing.assert_allclose(layer(x).data, ref.data, atol=1e-9)


class TestRuntimeFeatures:
    def test_recorder_collects_expected_columns(self, rng, cfg):
        layer = CIMConv2d(6, 8, 3, padding=1, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        recorder = PartialSumRecorder()
        layer.attach_recorder(recorder, "layer0")
        layer(positive_input(rng, (1, 6, 6, 6)))
        columns = recorder.column_values("layer0")
        assert len(columns) == layer.n_splits * layer.n_arrays * 8
        assert all(col.size > 0 for col in columns)

    def test_variation_changes_output_and_scales_with_sigma(self, rng, cfg):
        layer = CIMConv2d(6, 8, 3, padding=1, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        x = positive_input(rng, (1, 6, 6, 6))
        clean = layer(x).data.copy()
        deltas = []
        for sigma in (0.05, 0.3):
            layer.set_variation(VariationModel(sigma=sigma, seed=0))
            deltas.append(float(np.mean(np.abs(layer(x).data - clean))))
        layer.set_variation(None)
        assert deltas[0] > 0
        assert deltas[1] > deltas[0]
        np.testing.assert_allclose(layer(x).data, clean, atol=1e-12)

    def test_variation_target_weights(self, rng, cfg):
        layer = CIMConv2d(4, 4, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        x = positive_input(rng, (1, 4, 5, 5))
        clean = layer(x).data.copy()
        layer.set_variation(VariationModel(sigma=0.2, target="weights", seed=0))
        assert not np.allclose(layer(x).data, clean)

    def test_wrong_channel_count_raises(self, rng, cfg):
        layer = CIMConv2d(4, 4, 3, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        with pytest.raises(ValueError):
            layer(positive_input(rng, (1, 5, 5, 5)))

    def test_extra_repr_mentions_scheme(self, rng, cfg):
        layer = CIMConv2d(4, 4, 3, scheme=QuantScheme(weight_granularity="layer",
                                                      psum_granularity="column"),
                          cim_config=cfg, rng=rng)
        assert "Layer/Column" in layer.extra_repr()
