"""CIMLinear layer tests."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme, VariationModel
from repro.core import CIMLinear, PartialSumRecorder
from repro.nn import Tensor


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=32, array_cols=32, cell_bits=2)


def positive_input(rng, shape):
    return Tensor(np.abs(rng.normal(size=shape)), requires_grad=True)


class TestEquivalence:
    @pytest.mark.parametrize("granularity", ["layer", "array", "column"])
    def test_matches_reference_matmul(self, rng, cfg, granularity):
        scheme = QuantScheme(weight_granularity=granularity, psum_granularity="column",
                             quantize_psum=False)
        layer = CIMLinear(70, 10, bias=False, scheme=scheme, cim_config=cfg, rng=rng)
        x = positive_input(rng, (4, 70))
        out = layer(x)
        a_int, s_a = layer.act_quant.quantize_int(x)
        ref = (a_int * s_a).matmul(layer.reconstructed_weight().transpose())
        np.testing.assert_allclose(out.data, ref.data, atol=1e-9)

    def test_bias(self, rng, cfg):
        layer = CIMLinear(20, 5, bias=True, scheme=QuantScheme(quantize_psum=False),
                          cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 20))
        out_with = layer(x).data
        bias = layer.bias.data
        layer.bias.data = np.zeros_like(bias)
        np.testing.assert_allclose(out_with - bias, layer(x).data, atol=1e-9)

    def test_multi_array_tiling(self, rng, cfg):
        layer = CIMLinear(100, 8, scheme=QuantScheme(quantize_psum=False),
                          cim_config=cfg, rng=rng, bias=False)
        assert layer.n_arrays == 4
        x = positive_input(rng, (3, 100))
        a_int, s_a = layer.act_quant.quantize_int(x)
        ref = (a_int * s_a).matmul(layer.reconstructed_weight().transpose())
        np.testing.assert_allclose(layer(x).data, ref.data, atol=1e-9)


class TestBehaviour:
    def test_psum_quantization_changes_output(self, rng, cfg):
        layer = CIMLinear(40, 6, scheme=QuantScheme(psum_bits=2), cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 40))
        quantized = layer(x).data.copy()
        layer.set_psum_quant_enabled(False)
        assert not np.allclose(quantized, layer(x).data)

    def test_gradients_flow(self, rng, cfg):
        layer = CIMLinear(30, 4, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 30))
        (layer(x) ** 2).sum().backward()
        for param in (layer.weight, layer.weight_quant.scale, layer.act_quant.scale,
                      layer.psum_quant.scale):
            assert param.grad is not None

    def test_recorder(self, rng, cfg):
        layer = CIMLinear(40, 6, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        recorder = PartialSumRecorder()
        layer.attach_recorder(recorder, "fc")
        layer(positive_input(rng, (2, 40)))
        assert len(recorder.column_values("fc")) == layer.n_splits * layer.n_arrays * 6

    def test_variation(self, rng, cfg):
        layer = CIMLinear(40, 6, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        x = positive_input(rng, (2, 40))
        clean = layer(x).data.copy()
        layer.set_variation(VariationModel(sigma=0.2, seed=0))
        assert not np.allclose(layer(x).data, clean)
        layer.set_variation(VariationModel(sigma=0.2, target="weights", seed=0))
        assert not np.allclose(layer(x).data, clean)

    def test_wrong_input_shape_raises(self, rng, cfg):
        layer = CIMLinear(10, 2, scheme=QuantScheme(), cim_config=cfg, rng=rng)
        with pytest.raises(ValueError):
            layer(positive_input(rng, (2, 11)))

    def test_scale_shapes(self, rng, cfg):
        layer = CIMLinear(70, 6, scheme=QuantScheme(weight_granularity="column",
                                                    psum_granularity="column"),
                          cim_config=cfg, rng=rng)
        assert layer.weight_quant.scale.shape == (layer.n_arrays, 1, 6)
        assert layer.psum_quant.scale.shape == (layer.n_splits, layer.n_arrays, 1, 6)

    def test_quantize_input_false(self, rng, cfg):
        layer = CIMLinear(12, 3, scheme=QuantScheme(quantize_psum=False),
                          cim_config=cfg, quantize_input=False, rng=rng, bias=False)
        assert layer.act_quant is None
        x = positive_input(rng, (2, 12))
        ref = x.matmul(layer.reconstructed_weight().transpose())
        np.testing.assert_allclose(layer(x).data, ref.data, atol=1e-9)
