"""DataLoader batching and augmentation transforms."""

import numpy as np
import pytest

from repro.data import (Compose, DataLoader, Normalize, RandomCrop, RandomHorizontalFlip,
                        standard_augmentation)
from repro.data import test_loader as make_test_loader
from repro.data import train_loader as make_train_loader


class TestDataLoader:
    def _data(self, n=20, classes=4):
        rng = np.random.default_rng(0)
        return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, classes, size=n)

    def test_batching_covers_all_samples(self):
        images, labels = self._data(20)
        loader = DataLoader(images, labels, batch_size=6)
        batches = list(loader)
        assert len(batches) == 4
        assert sum(b[0].shape[0] for b in batches) == 20
        assert len(loader) == 4

    def test_drop_last(self):
        images, labels = self._data(20)
        loader = DataLoader(images, labels, batch_size=6, drop_last=True)
        assert len(loader) == 3
        assert all(b[0].shape[0] == 6 for b in loader)

    def test_shuffle_changes_order_but_not_content(self):
        images, labels = self._data(32)
        loader = DataLoader(images, labels, batch_size=32, shuffle=True, seed=1)
        (batch_images, batch_labels), = list(loader)
        assert not np.allclose(batch_images, images)
        assert sorted(batch_labels.tolist()) == sorted(labels.tolist())

    def test_no_shuffle_keeps_order(self):
        images, labels = self._data(10)
        loader = DataLoader(images, labels, batch_size=4, shuffle=False)
        first_batch = next(iter(loader))
        np.testing.assert_allclose(first_batch[0], images[:4])

    def test_length_mismatch_raises(self):
        images, labels = self._data(10)
        with pytest.raises(ValueError):
            DataLoader(images, labels[:5])

    def test_invalid_batch_size(self):
        images, labels = self._data(10)
        with pytest.raises(ValueError):
            DataLoader(images, labels, batch_size=0)

    def test_convenience_constructors(self, tiny_dataset):
        train = make_train_loader(tiny_dataset, batch_size=16)
        test = make_test_loader(tiny_dataset, batch_size=16)
        assert train.shuffle and not test.shuffle
        assert train.num_samples == 64 and test.num_samples == 32


class TestTransforms:
    def test_random_crop_preserves_shape(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(4, 3, 16, 16))
        out = RandomCrop(padding=2)(batch, rng)
        assert out.shape == batch.shape

    def test_random_crop_zero_padding_is_identity(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_allclose(RandomCrop(0)(batch, rng), batch)

    def test_flip_preserves_content_up_to_mirroring(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(8, 3, 4, 4))
        out = RandomHorizontalFlip(p=1.0)(batch, rng)
        np.testing.assert_allclose(out, batch[:, :, :, ::-1])

    def test_flip_probability_zero(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(4, 3, 4, 4))
        np.testing.assert_allclose(RandomHorizontalFlip(p=0.0)(batch, rng), batch)

    def test_normalize_fit_and_apply(self):
        rng = np.random.default_rng(0)
        images = rng.normal(loc=5.0, scale=3.0, size=(100, 3, 4, 4))
        norm = Normalize().fit(images)
        out = norm(images, rng)
        assert abs(out.mean()) < 0.05
        assert abs(out.std() - 1.0) < 0.05

    def test_normalize_unfit_raises(self):
        with pytest.raises(RuntimeError):
            Normalize()(np.zeros((1, 3, 2, 2)), np.random.default_rng(0))

    def test_compose_and_standard_augmentation(self):
        rng = np.random.default_rng(0)
        batch = np.random.default_rng(1).normal(size=(4, 3, 8, 8))
        pipeline = standard_augmentation(padding=1)
        out = pipeline(batch, rng)
        assert out.shape == batch.shape
        assert isinstance(pipeline, Compose)
