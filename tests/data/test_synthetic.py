"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import DatasetSpec, SyntheticImageDataset, make_dataset, synthetic_cifar10, \
    synthetic_cifar100, synthetic_imagenet


class TestGeneration:
    def test_shapes_and_dtypes(self):
        data = SyntheticImageDataset(DatasetSpec("t", 5, 16, train_samples=40, test_samples=20))
        assert data.train_images.shape == (40, 3, 16, 16)
        assert data.test_images.shape == (20, 3, 16, 16)
        assert data.train_labels.dtype == np.int64
        assert data.image_shape == (3, 16, 16)
        assert data.num_classes == 5
        assert len(data) == 40

    def test_deterministic_given_seed(self):
        spec = DatasetSpec("t", 4, 8, train_samples=16, test_samples=8, seed=7)
        a, b = SyntheticImageDataset(spec), SyntheticImageDataset(spec)
        np.testing.assert_allclose(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(DatasetSpec("t", 4, 8, train_samples=16, seed=0))
        b = SyntheticImageDataset(DatasetSpec("t", 4, 8, train_samples=16, seed=1))
        assert not np.allclose(a.train_images, b.train_images)

    def test_labels_cover_classes(self):
        data = SyntheticImageDataset(DatasetSpec("t", 4, 8, train_samples=400))
        assert set(np.unique(data.train_labels)) == {0, 1, 2, 3}

    def test_classes_are_separable(self):
        """Per-class mean images differ far more across classes than noise within."""
        data = SyntheticImageDataset(DatasetSpec("t", 3, 16, train_samples=300,
                                                 noise_std=0.1))
        means = [data.train_images[data.train_labels == c].mean(axis=0) for c in range(3)]
        between = np.mean([np.abs(means[i] - means[j]).mean()
                           for i in range(3) for j in range(i + 1, 3)])
        within = np.mean([np.std(data.train_images[data.train_labels == c], axis=0).mean()
                          for c in range(3)])
        assert between > within * 0.5

    def test_subset(self):
        data = SyntheticImageDataset(DatasetSpec("t", 4, 8, train_samples=64, test_samples=32))
        small = data.subset(train_samples=10, test_samples=4)
        assert small.train_images.shape[0] == 10
        assert small.test_images.shape[0] == 4
        np.testing.assert_allclose(small.train_images, data.train_images[:10])


class TestNamedConstructors:
    def test_cifar10_defaults(self):
        data = synthetic_cifar10(image_size=8, train_samples=32, test_samples=16)
        assert data.num_classes == 10
        assert data.spec.name == "synthetic-cifar10"

    def test_cifar100_has_100_classes(self):
        data = synthetic_cifar100(image_size=8, train_samples=16, test_samples=8)
        assert data.num_classes == 100

    def test_imagenet_configurable(self):
        data = synthetic_imagenet(image_size=16, num_classes=20, train_samples=16,
                                  test_samples=8)
        assert data.num_classes == 20
        assert data.image_shape == (3, 16, 16)

    def test_make_dataset(self):
        data = make_dataset("cifar10", image_size=8, train_samples=16, test_samples=8)
        assert data.num_classes == 10
        with pytest.raises(KeyError):
            make_dataset("mnist")
