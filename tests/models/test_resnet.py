"""ResNet architectures: shapes, quantized variants, parameter counts."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.core import cim_layers
from repro.models import (BasicBlock, LayerFactory, cifar_resnet, imagenet_resnet,
                          resnet8, resnet18, resnet20)
from repro.nn import Tensor


@pytest.fixture
def cfg():
    return CIMConfig(array_rows=64, array_cols=64, cell_bits=2)


class TestFullPrecision:
    def test_resnet20_output_shape(self, rng):
        model = resnet20(num_classes=10, width_multiplier=0.25)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_resnet20_depth(self):
        model = resnet20(width_multiplier=0.25)
        blocks = sum(len(stage) for stage in model.stages)
        assert blocks == 9                      # 3 stages x 3 blocks
        # 20 = 1 stem + 18 block convs + 1 fc
        assert "ResNet" in model.describe()

    def test_resnet18_output_shape(self, rng):
        model = resnet18(num_classes=20, width_multiplier=0.125)
        out = model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 20)

    def test_resnet18_depth(self):
        model = resnet18(width_multiplier=0.125)
        assert sum(len(stage) for stage in model.stages) == 8   # 4 stages x 2 blocks

    def test_resnet8_smaller_than_resnet20(self):
        assert resnet8(width_multiplier=0.5).num_parameters() < \
            resnet20(width_multiplier=0.5).num_parameters()

    def test_width_multiplier_scales_params(self):
        small = resnet20(width_multiplier=0.25).num_parameters()
        large = resnet20(width_multiplier=0.5).num_parameters()
        assert large > 2 * small

    def test_downsampling_halves_spatial_dims(self, rng):
        model = resnet20(width_multiplier=0.25)
        x = Tensor(rng.normal(size=(1, 3, 16, 16)))
        out = model.stem(x)
        assert out.shape[-1] == 16
        out = model.stages[0](out)
        assert out.shape[-1] == 16
        out = model.stages[1](out)
        assert out.shape[-1] == 8

    def test_cifar_resnet_depth_validation(self):
        with pytest.raises(ValueError):
            cifar_resnet(depth=21)
        assert sum(len(s) for s in cifar_resnet(depth=14, width_multiplier=0.25).stages) == 6

    def test_imagenet_resnet_depth_validation(self):
        with pytest.raises(ValueError):
            imagenet_resnet(depth=50)

    def test_invalid_stage_config(self):
        from repro.models.resnet import ResNet
        with pytest.raises(ValueError):
            ResNet([2, 2], [16], stem="cifar")
        with pytest.raises(ValueError):
            ResNet([2], [16], stem="mobile")


class TestQuantized:
    def test_cim_resnet8_has_cim_layers_everywhere(self, cfg):
        model = resnet8(num_classes=10, scheme=QuantScheme(), cim_config=cfg,
                        width_multiplier=0.25)
        names = [name for name, _ in cim_layers(model)]
        # stem conv + 3 blocks x (2 convs [+ shortcut]) + fc
        assert len(names) >= 8
        assert any("fc" in name for name in names)

    def test_cim_resnet_forward_and_backward(self, rng, cfg):
        model = resnet8(num_classes=5, scheme=QuantScheme(weight_bits=4, psum_bits=4),
                        cim_config=cfg, width_multiplier=0.25)
        out = model(Tensor(rng.normal(size=(2, 3, 12, 12))))
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        grads = [p.grad for p in model.parameters() if p.requires_grad]
        assert sum(g is not None for g in grads) > len(grads) * 0.9

    def test_first_conv_activation_not_quantized(self, cfg):
        model = resnet8(scheme=QuantScheme(), cim_config=cfg, width_multiplier=0.25)
        convs = [layer for _, layer in cim_layers(model) if hasattr(layer, "in_channels")]
        assert convs[0].act_quant is None
        assert convs[1].act_quant is not None

    def test_seed_reproducibility(self, cfg):
        a = resnet8(scheme=QuantScheme(), cim_config=cfg, width_multiplier=0.25, seed=3)
        b = resnet8(scheme=QuantScheme(), cim_config=cfg, width_multiplier=0.25, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)


class TestBasicBlock:
    def test_identity_shortcut_when_shapes_match(self, rng):
        factory = LayerFactory()
        block = BasicBlock(factory, 8, 8, stride=1)
        out = block(Tensor(rng.normal(size=(1, 8, 6, 6))))
        assert out.shape == (1, 8, 6, 6)

    def test_projection_shortcut_on_stride(self, rng):
        factory = LayerFactory()
        block = BasicBlock(factory, 8, 16, stride=2)
        out = block(Tensor(rng.normal(size=(1, 8, 6, 6))))
        assert out.shape == (1, 16, 3, 3)

    def test_output_nonnegative_after_relu(self, rng):
        block = BasicBlock(LayerFactory(), 4, 4)
        out = block(Tensor(rng.normal(size=(2, 4, 5, 5))))
        assert np.all(out.data >= 0)
