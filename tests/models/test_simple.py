"""Small CNN / MLP models and the model registry."""

import numpy as np
import pytest

from repro.cim import CIMConfig, QuantScheme
from repro.core import cim_layers
from repro.models import MLP, SimpleCNN, TinyCNN, available_models, build_model
from repro.nn import Tensor


class TestSimpleModels:
    def test_simple_cnn_shapes(self, rng):
        model = SimpleCNN(num_classes=7, channels=(8, 16, 16))
        out = model(Tensor(rng.normal(size=(3, 3, 16, 16))))
        assert out.shape == (3, 7)

    def test_tiny_cnn_shapes(self, rng):
        model = TinyCNN(num_classes=4, width=8)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 4)

    def test_mlp_flattens_images(self, rng):
        model = MLP(in_features=3 * 8 * 8, num_classes=5, hidden=(32,))
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_quantized_variants_contain_cim_layers(self):
        cfg = CIMConfig(array_rows=32, array_cols=32)
        cnn = SimpleCNN(num_classes=4, channels=(8, 8), scheme=QuantScheme(), cim_config=cfg)
        assert len(list(cim_layers(cnn))) == 3
        mlp = MLP(16, 4, hidden=(8,), scheme=QuantScheme(), cim_config=cfg)
        assert len(list(cim_layers(mlp))) == 2

    def test_backward_through_quantized_simple_cnn(self, rng):
        cfg = CIMConfig(array_rows=32, array_cols=32, cell_bits=2)
        model = SimpleCNN(num_classes=4, channels=(8, 8), scheme=QuantScheme(), cim_config=cfg)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        (out * out).sum().backward()
        assert any(p.grad is not None for p in model.parameters())


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        assert {"resnet20", "resnet18", "resnet8", "simple_cnn", "tiny_cnn", "mlp"} <= set(names)

    def test_build_model_fp(self, rng):
        model = build_model("tiny_cnn", num_classes=3)
        assert model(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 3)

    def test_build_model_quantized(self):
        model = build_model("resnet8", num_classes=4, scheme=QuantScheme(),
                            cim_config=CIMConfig(array_rows=32), width_multiplier=0.25)
        assert len(list(cim_layers(model))) > 0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("vgg", num_classes=10)
