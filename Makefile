# Development targets for the CIM column-wise quantization reproduction.
#
#   make verify       - the one-command gate: tier-1 tests + lint + docs-check
#                       + bench-smoke
#   make test         - tier-1 test suite (unit + property + integration)
#   make lint         - static analyzer (tools/analyze): lock-discipline,
#                       hot-path allocation, int-purity, thread-safety docs
#                       over src/repro with an empty baseline, 5s budget
#   make test-engine  - just the frozen-engine suite
#   make test-int     - the integer-route differential suites (fast iteration
#                       on the requant pipeline: property tests, fuzz
#                       differentials, golden int fixtures)
#   make coverage     - line coverage gate over the engine plus the requant
#                       pipeline modules (pytest + tools/run_coverage.py,
#                       fails under 90%; uses the coverage package when present,
#                       a stdlib settrace fallback otherwise)
#   make bench-smoke  - fast smoke pass over the benchmark harness
#   make bench-engine - frozen-engine speedup benchmark at default scale
#   make bench-runner - batched inference-runner throughput benchmark
#   make bench-server - concurrent PlanServer throughput benchmark
#   make bench-int    - integer-requantized route benchmark at default scale
#   make bench-compiler - compiled (fused + arena) vs interpreted execution
#   make bench-netserver - HTTP front-end SLO benchmark (sustained + bursty +
#                       saturation load against a 2-shard NetServer)
#   make bench-reload - serving-lifecycle benchmark (rolling reload p99 vs
#                       steady state, autoscaled vs fixed pool under
#                       saturation, scale-up reaction time)
#   make bench-analyze - analyzer self-runtime benchmark (full-tree + per-pass
#                       timings against the 5s lint budget)
#   make serve-demo   - end-to-end HTTP serving walkthrough
#                       (examples/serve_http.py: mount, predict, metrics, drain)
#   make docs-check   - fail on undocumented public APIs in the documented
#                       modules + run the fenced python snippets of docs/engine.md
#   make install      - editable install (works without the wheel package)

PYTHON      ?= python
PYTHONPATH  := src

export PYTHONPATH

.PHONY: verify test lint test-engine test-int coverage bench-smoke bench-engine bench-runner bench-server bench-int bench-compiler bench-netserver bench-reload bench-analyze serve-demo docs-check install

verify: test lint docs-check bench-smoke

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m tools.analyze src/repro --max-seconds 5

test-engine:
	$(PYTHON) -m pytest tests/engine -q

test-int:
	$(PYTHON) -m pytest tests/core/test_requant.py tests/engine/test_int_requant.py tests/engine/test_golden.py -q

coverage:
	$(PYTHON) tools/run_coverage.py --source src/repro/engine --source src/repro/core/pipeline.py --source src/repro/core/requant.py --source tools/analyze --fail-under 90 tests/engine tests/core tests/tools -q

bench-smoke:
	REPRO_BENCH_SCALE=tiny $(PYTHON) -m pytest benchmarks/bench_engine_speedup.py benchmarks/bench_runner_throughput.py benchmarks/bench_server_concurrency.py benchmarks/bench_int_requant.py benchmarks/bench_compiler.py benchmarks/bench_netserver_slo.py benchmarks/bench_reload_autoscale.py benchmarks/bench_analyze.py -q

bench-engine:
	$(PYTHON) benchmarks/bench_engine_speedup.py

bench-runner:
	$(PYTHON) benchmarks/bench_runner_throughput.py

bench-server:
	$(PYTHON) benchmarks/bench_server_concurrency.py

bench-int:
	$(PYTHON) benchmarks/bench_int_requant.py

bench-compiler:
	$(PYTHON) benchmarks/bench_compiler.py

bench-netserver:
	$(PYTHON) benchmarks/bench_netserver_slo.py

bench-reload:
	$(PYTHON) benchmarks/bench_reload_autoscale.py

bench-analyze:
	$(PYTHON) benchmarks/bench_analyze.py

serve-demo:
	$(PYTHON) examples/serve_http.py

docs-check:
	$(PYTHON) tools/check_docstrings.py src/repro/engine src/repro/models src/repro/core/psum.py src/repro/core/pipeline.py src/repro/core/requant.py src/repro/cim/cost.py tools/serve.py tools/analyze
	$(PYTHON) tools/run_doc_snippets.py docs/engine.md

install:
	pip install -e . || $(PYTHON) setup.py develop
