"""Fig. 9 — one-stage vs two-stage QAT: accuracy and training cost.

Trains the four cases of Fig. 9 under an identical epoch budget:

* (i)   column/column one-stage (ours),
* (ii)  column/column two-stage,
* (iii) layer/column  one-stage,
* (iv)  layer/column  two-stage (Saxena [9]),

then prints each case's best accuracy and wall-clock training time, plus the
relative-cost markers the paper reports (e.g. case (i) reaching case (ii)'s
best accuracy with less training cost).
"""

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import print_table, relative_cost_to_reach, run_qat_schedule_comparison


def run_fig9():
    config = experiment("cifar10")
    return run_qat_schedule_comparison(config, epochs=bench_epochs(3, 6), seed=0)


def test_fig9_qat_schedule_cost(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = [result.row() for result in results.values()]
    print()
    print_table(rows, title="Fig. 9 — QAT schedule comparison (accuracy / train time)")

    assert set(results) == {"i_column_column_1stage", "ii_column_column_2stage",
                            "iii_layer_column_1stage", "iv_layer_column_2stage"}
    for marker, (reference, target) in {
        "star (i reaches ii's best)": ("ii_column_column_2stage", "i_column_column_1stage"),
        "circle (i/iii reach iii's best)": ("iii_layer_column_1stage", "i_column_column_1stage"),
        "plus (ii/iv reach iv's best)": ("iv_layer_column_2stage", "ii_column_column_2stage"),
    }.items():
        saving = relative_cost_to_reach(results, reference, target)
        print(f"{marker}: relative training-cost saving = "
              f"{'not reached' if saving is None else f'{saving:+.1%}'}")

    # structural claims that survive the reduced scale: every case trained for
    # the same number of epochs and produced a sensible accuracy
    epochs = {r.epochs for r in results.values()}
    assert len(epochs) == 1
    assert all(0.0 <= r.best_accuracy <= 1.0 for r in results.values())
    # the aligned one-stage scheme should not be the worst of the four
    ordered = sorted(results.values(), key=lambda r: r.best_accuracy)
    check_ordering(ordered[0].case != "i_column_column_1stage"
                   or ordered[0].best_accuracy == ordered[-1].best_accuracy,
                   "the aligned one-stage scheme should not be the worst case")
