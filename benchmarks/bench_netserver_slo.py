"""Engine — network front-end SLO benchmark: tail latency under load, not averages.

Every earlier serving benchmark measures *aggregate throughput*; a wire
front end is judged by what one request experiences at the tail.  This
load generator drives a live :class:`repro.engine.NetServer` (real sockets,
real JSON, 2-shard :class:`PlanServer` behind it) through three traffic
shapes and reports client-side p50/p99:

* **sustained closed-loop** — K concurrent clients, each firing its next
  request the moment the previous answer lands: the steady-state operating
  point;
* **bursty open-loop** — requests fired on a fixed arrival schedule of
  B-request bursts regardless of completions: the shape that exposes
  queue-wait at the tail (open-loop arrival is the honest way to measure
  queueing — closed-loop clients self-throttle and hide it);
* **saturation** — offered concurrency far above capacity against a small
  admission queue: asserts the server *rejects fast* (503 + Retry-After)
  while every accepted request still completes with **bounded p99** —
  admission control working, not queue collapse.

Also pinned: served outputs are bit-identical to the in-process
:class:`InferenceRunner` (drift 0.0), and the ``/metrics`` counters
conserve (``accepted + rejected == offered``).

Run directly (``python benchmarks/bench_netserver_slo.py``) or through
pytest.  Either entry point writes ``BENCH_netserver.json`` (override with
``REPRO_BENCH_NETSERVER_ARTIFACT``); ``tiny``-scale smoke runs skip the
write so ``make bench-smoke`` never clobbers the tracked default-scale
numbers.
"""

import http.client
import json
import os
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine
from repro.engine.latency import percentiles


def _settings():
    """Workload per benchmark scale (model size, client counts, schedules)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, sustained_clients=4,
                    sustained_requests=24, burst_size=6, n_bursts=4,
                    burst_interval_s=0.05, saturation_clients=16,
                    max_batch=8, max_wait_ms=1.0, queue_size=64,
                    sat_queue_size=4, sat_delay_s=0.03)
    return dict(image=14, width=0.5, sustained_clients=8,
                sustained_requests=96, burst_size=16, n_bursts=8,
                burst_interval_s=0.05, saturation_clients=48,
                max_batch=16, max_wait_ms=2.0, queue_size=128,
                sat_queue_size=8, sat_delay_s=0.05)


class _Client:
    """One keep-alive HTTP connection issuing predict requests."""

    def __init__(self, net, model: str, timeout: float = 60.0):
        self._conn = http.client.HTTPConnection(net.host, net.port,
                                                timeout=timeout)
        self._path = f"/v1/models/{model}/predict"

    def predict(self, sample) -> tuple:
        """POST one single-sample batch; returns (status, json, latency_s)."""
        body = json.dumps({"inputs": [sample]}).encode()
        start = time.perf_counter()
        self._conn.request("POST", self._path, body=body)
        response = self._conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, time.perf_counter() - start

    def close(self):
        self._conn.close()


def _build_net(tmp_dir, cfg, plan_holder):
    """Artifact -> NetServer with a 2-shard model mounted; returns the net."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    path = os.path.join(tmp_dir, "resnet8_plan.npz")
    engine.save_model_plan(engine.compile_model_plan(model), path)
    engine.clear_plan_cache()
    plan_holder.append(engine.load_plan(path))   # independent reference copy
    net = engine.NetServer()
    net.add_model("resnet", path, n_shards=2, max_batch=cfg["max_batch"],
                  max_wait_ms=cfg["max_wait_ms"], queue_size=cfg["queue_size"])
    return net.start()


def _sample_pool(cfg, n: int = 32):
    rng = np.random.default_rng(1)
    return np.abs(rng.normal(size=(n, 3, cfg["image"], cfg["image"])))


def _run_sustained(net, cfg, pool):
    """Closed loop: K clients, each sequentially firing its share."""
    per_client = cfg["sustained_requests"] // cfg["sustained_clients"]
    latencies, outputs, lock = [], {}, threading.Lock()

    def worker(cid):
        client = _Client(net, "resnet")
        try:
            for i in range(per_client):
                index = (cid * per_client + i) % pool.shape[0]
                status, payload, latency = client.predict(
                    pool[index].tolist())
                assert status == 200, payload
                with lock:
                    latencies.append(latency)
                    outputs[index] = payload["outputs"][0]
        finally:
            client.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(cfg["sustained_clients"])]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    tail = percentiles(latencies, qs=(50.0, 99.0))
    return {
        "clients": cfg["sustained_clients"],
        "requests": len(latencies),
        "throughput_rps": len(latencies) / elapsed,
        "p50_ms": tail[50.0] * 1e3,
        "p99_ms": tail[99.0] * 1e3,
    }, outputs


def _run_bursty(net, cfg, pool):
    """Open loop: fire B-request bursts on a fixed schedule, then collect."""
    latencies, lock = [], threading.Lock()
    threads = []

    def one_shot(index):
        client = _Client(net, "resnet")
        try:
            status, payload, latency = client.predict(pool[index].tolist())
            assert status == 200, payload
            with lock:
                latencies.append(latency)
        finally:
            client.close()

    start = time.perf_counter()
    for burst in range(cfg["n_bursts"]):
        for i in range(cfg["burst_size"]):
            index = (burst * cfg["burst_size"] + i) % pool.shape[0]
            thread = threading.Thread(target=one_shot, args=(index,))
            thread.start()
            threads.append(thread)
        time.sleep(cfg["burst_interval_s"])
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    tail = percentiles(latencies, qs=(50.0, 99.0))
    return {
        "bursts": cfg["n_bursts"],
        "burst_size": cfg["burst_size"],
        "burst_interval_ms": cfg["burst_interval_s"] * 1e3,
        "requests": len(latencies),
        "throughput_rps": len(latencies) / elapsed,
        "p50_ms": tail[50.0] * 1e3,
        "p99_ms": tail[99.0] * 1e3,
    }


class _SlowPlan:
    """Fixed-delay toy plan so the saturation scenario is deterministic."""

    np_dtype = np.dtype(np.float64)

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def execute(self, x, timings=None, workspace=None):
        """``2x + 1`` after a fixed delay per non-empty batch."""
        x = np.asarray(x)
        if x.shape[0]:
            time.sleep(self.delay_s)
        return x * 2.0 + 1.0


def _run_saturation(net, cfg):
    """Offered load far above capacity against a small admission queue."""
    net.add_model("sat", _SlowPlan(cfg["sat_delay_s"]), n_shards=2,
                  max_batch=2, max_wait_ms=0.0,
                  queue_size=cfg["sat_queue_size"])
    accepted_latencies, statuses, lock = [], [], threading.Lock()

    def worker(cid):
        client = _Client(net, "sat")
        try:
            status, payload, latency = client.predict([float(cid), 0.0])
            with lock:
                statuses.append(status)
                if status == 200:
                    assert payload["outputs"] == [[2.0 * cid + 1.0, 1.0]]
                    accepted_latencies.append(latency)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(cfg["saturation_clients"])]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    counters = net.endpoint("sat").counters.to_dict()
    tail = percentiles(accepted_latencies, qs=(50.0, 99.0))
    # the bound admission control guarantees: an admitted request waits for
    # at most the queued samples ahead of it, one batch at a time
    batches_ahead = cfg["sat_queue_size"] / 2 + 1
    bound_s = 4.0 * batches_ahead * cfg["sat_delay_s"] + 1.0
    return {
        "offered": counters["offered"],
        "accepted": counters["accepted"],
        "rejected": counters["rejected"],
        "completed": counters["completed"],
        "conserved": counters["accepted"] + counters["rejected"]
        == counters["offered"],
        "p50_accepted_ms": tail[50.0] * 1e3,
        "p99_accepted_ms": tail[99.0] * 1e3,
        "p99_bound_ms": bound_s * 1e3,
    }


def run_netserver_slo():
    """Drive all three traffic shapes against one live server; return results."""
    cfg = _settings()
    import tempfile
    plan_holder = []
    with tempfile.TemporaryDirectory() as tmp_dir:
        net = _build_net(tmp_dir, cfg, plan_holder)
    reference = engine.InferenceRunner(plan_holder[0],
                                       batch_size=cfg["max_batch"])
    pool = _sample_pool(cfg)
    expected = reference.predict(pool)
    try:
        # warm-up: touch lazy state on both shards before timing
        warm = _Client(net, "resnet")
        for index in range(4):
            warm.predict(pool[index].tolist())
        warm.close()
        net.endpoint("resnet").latency["total"].reset()

        sustained, outputs = _run_sustained(net, cfg, pool)
        bursty = _run_bursty(net, cfg, pool)
        saturation = _run_saturation(net, cfg)
        metrics = net.metrics()["models"]["resnet"]
    finally:
        net.close()

    drift = max(float(np.abs(np.asarray(row, dtype=np.float64)
                             - expected[index]).max())
                for index, row in outputs.items())
    return {
        "n_shards": 2,
        "max_batch": cfg["max_batch"],
        "max_wait_ms": cfg["max_wait_ms"],
        "queue_size": cfg["queue_size"],
        "parity_max_abs_diff": drift,
        "sustained": sustained,
        "bursty": bursty,
        "saturation": saturation,
        "server_latency_split_ms": {
            "queue_p99": metrics["latency"]["queue"]["p99_ms"],
            "compute_p99": metrics["latency"]["compute"]["p99_ms"],
            "total_p99": metrics["latency"]["total"]["p99_ms"],
        },
    }


def write_artifact(results, path=None):
    """Write the results to ``BENCH_netserver.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_NETSERVER_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("netserver_slo", "BENCH_netserver.json",
                           "REPRO_BENCH_NETSERVER_ARTIFACT", results,
                           path=path)


def _report(results) -> None:
    print()
    print(f"2-shard netserver, max_batch={results['max_batch']}, "
          f"parity max|diff|={results['parity_max_abs_diff']:.2e}")
    for name in ("sustained", "bursty"):
        shape = results[name]
        print(f"{name:>10}: {shape['requests']:4d} req  "
              f"{shape['throughput_rps']:7.1f} req/s  "
              f"p50 {shape['p50_ms']:7.1f} ms  p99 {shape['p99_ms']:7.1f} ms")
    sat = results["saturation"]
    print(f"saturation: offered {sat['offered']}, accepted {sat['accepted']}, "
          f"rejected {sat['rejected']} (conserved={sat['conserved']}); "
          f"accepted p99 {sat['p99_accepted_ms']:.1f} ms "
          f"(bound {sat['p99_bound_ms']:.0f} ms)")
    split = results["server_latency_split_ms"]
    print(f"server-side p99 split: queue {split['queue_p99']:.1f} ms + "
          f"compute {split['compute_p99']:.1f} ms "
          f"(total {split['total_p99']:.1f} ms)")


def test_netserver_slo():
    """Acceptance: bit-identical serving over the wire, admission control
    rejecting under saturation with bounded p99 for accepted requests, and
    conserved request counters."""
    results = run_netserver_slo()
    _report(results)
    write_artifact(results)
    assert results["parity_max_abs_diff"] == 0.0, (
        f"socket responses drifted from the runner by "
        f"{results['parity_max_abs_diff']:.2e} (float64 must be bit-exact)")
    sat = results["saturation"]
    assert sat["conserved"], (
        f"admission counters leak: accepted {sat['accepted']} + rejected "
        f"{sat['rejected']} != offered {sat['offered']}")
    assert sat["rejected"] > 0, (
        "saturation scenario produced no 503s — admission control never "
        "fired, the queue must have absorbed the burst (misconfigured test)")
    assert sat["accepted"] == sat["completed"] and sat["accepted"] > 0, (
        f"accepted requests did not all complete: accepted {sat['accepted']}"
        f" vs completed {sat['completed']}")
    assert sat["p99_accepted_ms"] <= sat["p99_bound_ms"], (
        f"p99 of accepted requests {sat['p99_accepted_ms']:.0f} ms exceeds "
        f"the admission bound {sat['p99_bound_ms']:.0f} ms — queueing is "
        "not bounded")


if __name__ == "__main__":
    _results = run_netserver_slo()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
