"""Engine — integer-requantized execution vs the float reference route.

``mode="int"`` replaces the float dequant of every frozen layer with
fixed-point arithmetic: the GEMMs run on an exact-integer ``float32``
carrier, and everything between the input quantizer and the output dequant
is ``int64`` multiplies and arithmetic shifts (see ``repro.core.requant``).
This benchmark pins the three contracts of that route on one model:

* **accuracy**: top-1 predictions agree on every sample, and nearly all
  samples stay within the plan's *declared* drift bound
  (``ModelPlan.int_drift_bound()``).  The bound is a per-layer statement;
  composing layers, a float activation that happens to land within the
  per-layer drift (~1e-7 of natural scale) of an activation-quantizer
  rounding boundary can flip one code, which then propagates at unit
  scale — so a rare tail sample may exceed the composed bound by orders
  of magnitude while the rest sit far inside it.  The *strict* bit-exact
  and drift-bound gates live on the fixture models in
  ``tests/engine/test_int_requant.py`` and ``tests/engine/test_golden.py``;
  here the gate is an honest one: full top-1 agreement plus a floor on
  the fraction of samples within the declared bound;
* **throughput**: at the default scale the integer route is at least 1.2x
  faster than the float reference on batched execution — the narrower GEMM
  carrier and the cache-blocked fixed-point passes beat the float path's
  float64 GEMMs + per-array dequant chain;
* **memory**: the integer route's per-layer GEMM operands are roughly half
  the float route's (float32 vs float64 weight matrices); both footprints
  are recorded.

Run directly (``python benchmarks/bench_int_requant.py``) or through
pytest.  Either entry point writes a ``BENCH_int.json`` artifact (override
the location with ``REPRO_BENCH_INT_ARTIFACT``); ``tiny``-scale smoke runs
skip the write — and relax the speedup gate, which is only meaningful once
the GEMMs have real work — so `make bench-smoke` stays fast and never
clobbers the tracked default-scale numbers.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine


def _settings():
    """Workload per benchmark scale (image/width/stream length/batch size)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, samples=16, batch=8, repeats=2)
    return dict(image=16, width=1.0, samples=64, batch=32, repeats=3)


def _operand_bytes(plan) -> dict:
    """GEMM + rescale operand footprint of each route, summed over layers."""
    float_bytes = 0
    int_bytes = 0
    for layer in plan.layer_plans:
        if layer.psum_quant_enabled:
            float_bytes += sum(w.nbytes for w in layer.w_split_mats)
            float_bytes += layer.s_p_full.nbytes + layer.m_fold.nbytes
        else:
            float_bytes += layer.w_eff_valid.nbytes
        rq = layer.requant
        if rq is None:
            continue
        mats = (layer._w_split_int_mats if layer.psum_quant_enabled
                else layer._w_int_mats)
        int_bytes += sum(w.nbytes for w in mats)
        int_bytes += sum(arr.nbytes for arr in rq.arrays().values())
    return {"float_operand_bytes": int(float_bytes),
            "int_operand_bytes": int(int_bytes)}


def _build_plan(cfg):
    """The shared reference ResNet-8, frozen into a model plan."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    return engine.compile_model_plan(model)


def _time_mode(plan, mode, batches, repeats: int) -> float:
    """Seconds to execute all batches in ``mode`` (best of ``repeats``)."""
    plan.set_mode(mode)
    plan.execute(batches[0])                 # warm up caches and lazy state
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for batch in batches:
            plan.execute(batch)
        best = min(best, time.perf_counter() - start)
    return best


def run_int_requant():
    """Measure float-vs-int execution on the reference serving model."""
    cfg = _settings()
    plan = _build_plan(cfg)
    rng = np.random.default_rng(1)
    stream = np.abs(rng.normal(
        size=(cfg["samples"], 3, cfg["image"], cfg["image"])))
    batches = [stream[i:i + cfg["batch"]]
               for i in range(0, cfg["samples"], cfg["batch"])]

    plan.set_mode("float")
    ref = np.concatenate([plan.execute(b) for b in batches])
    plan.set_mode("int")
    out = np.concatenate([plan.execute(b) for b in batches])
    per_sample = np.abs(out - ref).max(axis=1)
    bound = float(plan.int_drift_bound())
    agreement = float((out.argmax(axis=1) == ref.argmax(axis=1)).mean())

    t_float = _time_mode(plan, "float", batches, cfg["repeats"])
    t_int = _time_mode(plan, "int", batches, cfg["repeats"])
    results = {
        "samples": cfg["samples"],
        "batch_size": cfg["batch"],
        "image": cfg["image"],
        "width_multiplier": cfg["width"],
        "max_abs_drift": float(per_sample.max()),
        "median_abs_drift": float(np.median(per_sample)),
        "declared_drift_bound": bound,
        "drift_within_bound_fraction": float((per_sample <= bound).mean()),
        "top1_agreement": agreement,
        "float_s": t_float,
        "int_s": t_int,
        "float_throughput": cfg["samples"] / t_float,
        "int_throughput": cfg["samples"] / t_int,
        "speedup": t_float / t_int,
    }
    results.update(_operand_bytes(plan))
    return results


def write_artifact(results, path=None):
    """Write the results to ``BENCH_int.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_INT_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("int_requant", "BENCH_int.json",
                           "REPRO_BENCH_INT_ARTIFACT", results, path=path)


def _report(results) -> None:
    print()
    print(f"samples={results['samples']}  batch={results['batch_size']}  "
          f"image={results['image']}  width={results['width_multiplier']}")
    print(f"drift max|diff|={results['max_abs_drift']:.3e} "
          f"median={results['median_abs_drift']:.3e} "
          f"(declared bound {results['declared_drift_bound']:.3e}, "
          f"{results['drift_within_bound_fraction']:.1%} of samples within)")
    print(f"top-1 agreement={results['top1_agreement']:.3f}")
    print(f"float : {results['float_s'] * 1e3:8.1f} ms  "
          f"{results['float_throughput']:8.1f} im/s")
    print(f"int   : {results['int_s'] * 1e3:8.1f} ms  "
          f"{results['int_throughput']:8.1f} im/s  "
          f"({results['speedup']:.2f}x)")
    print(f"operands: float {results['float_operand_bytes'] / 1024:.0f} KiB, "
          f"int {results['int_operand_bytes'] / 1024:.0f} KiB")


def test_int_requant_drift_and_throughput():
    """Acceptance: full top-1 agreement, nearly all samples within the
    declared drift bound (rare quantizer-boundary code flips cascade — see
    the module docstring), and >= 1.2x throughput at the default scale
    (tiny workloads are overhead-dominated, so the smoke pass only
    sanity-checks the ratio)."""
    results = run_int_requant()
    _report(results)
    write_artifact(results)
    assert results["drift_within_bound_fraction"] >= 0.9, (
        f"only {results['drift_within_bound_fraction']:.1%} of samples "
        f"within the declared drift bound "
        f"{results['declared_drift_bound']:.3e} (expected >= 90%)")
    assert results["top1_agreement"] == 1.0, (
        f"top-1 agreement {results['top1_agreement']:.3f} < 1.0")
    floor = 1.2 if bench_scale() != "tiny" else 0.5
    assert results["speedup"] >= floor, (
        f"int route only {results['speedup']:.2f}x the float route "
        f"(expected >= {floor}x at scale {bench_scale()!r})")


if __name__ == "__main__":
    _results = run_int_requant()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
