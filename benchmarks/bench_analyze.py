"""Analyzer self-runtime — the lint gate must stay effectively free.

``make lint`` runs every registered pass of ``tools.analyze`` over the
whole ``src/repro`` tree on every ``make verify``, so its runtime is part
of the developer inner loop.  This benchmark pins that budget:

* **runtime**: a full four-pass run over ``src/repro`` completes in
  under 5 seconds (the ``--max-seconds`` value the lint target enforces);
* **cleanliness**: the run reports zero findings — the gate runs with an
  empty baseline, so any finding here is a regression;
* **per-pass attribution**: each pass is also timed alone, so a future
  slowdown names its culprit instead of just blowing the total.

Run directly (``python benchmarks/bench_analyze.py``) or through pytest.
Either entry point writes a ``BENCH_analyze.json`` artifact (override the
location with ``REPRO_BENCH_ANALYZE_ARTIFACT``); ``tiny``-scale smoke
runs skip the write so ``make bench-smoke`` never clobbers the tracked
default-scale numbers.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from bench_artifacts import write_artifact as _write_artifact

from tools.analyze.core import all_passes, run_analysis

_BUDGET_SECONDS = 5.0
_TREE = os.path.join(_ROOT, "src", "repro")


def _timed_run(select=None):
    """One analysis run over the engine tree: (seconds, result)."""
    started = time.perf_counter()
    result = run_analysis([_TREE], select=select, root=_ROOT)
    return time.perf_counter() - started, result


def run_benchmark():
    """Full-tree and per-pass timings plus the finding counts."""
    total_seconds, result = _timed_run()
    per_pass = {}
    for pass_id in all_passes():
        seconds, partial = _timed_run(select=[pass_id])
        per_pass[pass_id] = {"seconds": round(seconds, 4),
                             "findings": len(partial.findings)}
    return {
        "files_analyzed": result.files_analyzed,
        "total_seconds": round(total_seconds, 4),
        "budget_seconds": _BUDGET_SECONDS,
        "findings": len(result.findings),
        "waived": len(result.waived),
        "per_pass": per_pass,
    }


def check_results(results):
    """Assert the lint-gate contract on one benchmark run."""
    assert results["files_analyzed"] > 50, results
    assert results["findings"] == 0, \
        f"engine tree is not analyzer-clean: {results}"
    assert results["total_seconds"] < _BUDGET_SECONDS, \
        f"analyzer blew its {_BUDGET_SECONDS}s budget: {results}"


def test_analyzer_runtime_budget():
    """Pytest entry point: full tree clean and inside the 5s budget."""
    results = run_benchmark()
    check_results(results)
    _write_artifact("analyze", "BENCH_analyze.json",
                    "REPRO_BENCH_ANALYZE_ARTIFACT", results)


def main():
    """Direct entry point: print the timings and write the artifact."""
    results = run_benchmark()
    check_results(results)
    print(f"analyzed {results['files_analyzed']} files in "
          f"{results['total_seconds']:.2f}s "
          f"(budget {results['budget_seconds']:.0f}s)")
    for pass_id, stats in results["per_pass"].items():
        print(f"  {pass_id:<24} {stats['seconds']:.2f}s "
              f"{stats['findings']} finding(s)")
    path = _write_artifact("analyze", "BENCH_analyze.json",
                           "REPRO_BENCH_ANALYZE_ARTIFACT", results)
    if path:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
