"""Fig. 7(a) — ResNet-20 / CIFAR-10 accuracy under each quantization scheme.

Trains the full-precision reference plus every Table I scheme (Kim [5],
Bai [6][7], Saxena [8], Saxena [9], Ours) with the CIFAR-10 bit widths of
Table II (W3 / A3 / binary partial sums, 1 bit per cell) at reduced scale and
prints the accuracy of each, mirroring the bars of Fig. 7(a).

Expected shape (synthetic data, reduced budget): the full-precision model is
the upper bound and the proposed column/column scheme is the best quantized
scheme or within noise of it; PTQ baselines trail the QAT ones.
"""

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import print_table, run_related_work_comparison


def run_fig7a():
    config = experiment("cifar10")
    return run_related_work_comparison(config, epochs=bench_epochs(2, 5), seed=0)


def test_fig7a_cifar10_scheme_comparison(benchmark):
    results = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    rows = [result.row() for result in results.values()]
    print()
    print_table(rows, title="Fig. 7(a) — CIFAR-10 accuracy by quantization scheme")

    accuracy = {key: result.top1 for key, result in results.items()}
    # structural checks: every scheme produced a valid accuracy
    assert set(accuracy) == {"full_precision", "kim", "bai", "saxena_date22",
                             "saxena_islped23", "ours"}
    assert all(0.0 <= value <= 1.0 for value in accuracy.values())
    # the paper's headline ordering: ours is the best *quantized* scheme
    quantized = {k: v for k, v in accuracy.items() if k != "full_precision"}
    best_quantized = max(quantized.values())
    print(f"\nours={accuracy['ours']:.4f}  best-of-related={best_quantized:.4f}  "
          f"fp={accuracy['full_precision']:.4f}")
    check_ordering(accuracy["ours"] >= best_quantized - 0.05,
                   "ours should be the best quantized scheme (Fig. 7a)")
