"""Table II — experimental settings.

Regenerates the settings table (bit precisions, cells per weight, array size,
training budget) from the experiment-configuration registry and checks the
derived CIM macro parameters (number of bit-splits, ADC precision).
"""

from repro.analysis import print_table
from repro.training import PAPER_EXPERIMENTS, paper_experiment


def build_table2():
    rows = []
    for name, config in PAPER_EXPERIMENTS.items():
        cim = config.cim_config()
        rows.append({
            "benchmark": name,
            "model": config.model,
            "activation_bits": config.act_bits,
            "weight_bits": config.weight_bits,
            "bits_per_cell": config.cell_bits,
            "bit_splits": cim.n_splits(config.weight_bits),
            "psum_bits": config.psum_bits,
            "array_size": f"{config.array_size}x{config.array_size}",
            "epochs": config.epochs,
        })
    return rows


def test_table2_experimental_settings(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    print()
    print_table(rows, title="Table II — experimental settings")

    by_name = {r["benchmark"]: r for r in rows}
    assert by_name["cifar10"]["weight_bits"] == 3 and by_name["cifar10"]["bits_per_cell"] == 1
    assert by_name["cifar10"]["bit_splits"] == 3          # 3b weights on 1b cells
    assert by_name["cifar100"]["bit_splits"] == 2         # 4b weights on 2b cells
    assert by_name["imagenet"]["bit_splits"] == 1         # 3b weights on 3b cells
    assert by_name["imagenet"]["array_size"] == "256x256"
    assert paper_experiment("cifar10").epochs == 200
