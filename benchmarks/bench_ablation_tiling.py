"""Ablation — kernel-preserving array tiling vs conventional im2col tiling.

Sec. III-C motivates the proposed tiling by two effects: (1) it keeps every
stretched kernel inside a single array so the per-array MAC can be expressed
as a (group) convolution, and (2) it avoids the sequential per-array indexing
of the im2col approach.  This ablation quantifies the trade-off that comes
with it — a slightly lower word-line utilisation because ``array_rows mod
(K*K)`` rows per array stay unused — and measures the forward latency of a
mid-network ResNet-20 layer under both strategies in this simulator.

(The latency numbers characterise the NumPy simulation, not silicon; the
utilisation and array-count columns are architecture facts.)
"""

import time

import numpy as np

from repro.analysis import print_table
from repro.cim import CIMConfig, QuantScheme, build_mapping, rows_utilization
from repro.core import CIMConv2d
from repro.nn import Tensor


LAYER = {"in_channels": 32, "out_channels": 64, "kernel_size": 3}


def run_ablation():
    rows = []
    x = Tensor(np.abs(np.random.default_rng(0).normal(size=(2, 32, 8, 8))))
    for strategy in ("kernel_preserving", "im2col"):
        cim = CIMConfig(array_rows=128, array_cols=128, cell_bits=2, tiling=strategy)
        mapping = build_mapping(LAYER["in_channels"], LAYER["out_channels"],
                                (3, 3), weight_bits=4, config=cim)
        layer = CIMConv2d(LAYER["in_channels"], LAYER["out_channels"], 3, padding=1,
                          scheme=QuantScheme(weight_bits=4, act_bits=4, psum_bits=4),
                          cim_config=cim, rng=np.random.default_rng(0))
        layer(x)  # warm-up (initialises the LSQ scales)
        start = time.perf_counter()
        for _ in range(3):
            layer(x)
        elapsed = (time.perf_counter() - start) / 3
        rows.append({
            "tiling": strategy,
            "row_tiles": mapping.n_arrays_row,
            "col_tiles": mapping.col_tiles,
            "rows_per_array": mapping.rows_per_array,
            "row_utilization": round(rows_utilization(mapping), 3),
            "forward_ms": round(elapsed * 1000, 1),
        })
    return rows


def test_ablation_tiling_strategies(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print_table(rows, title="Ablation — kernel-preserving vs im2col tiling (32->64, 3x3, 128x128 arrays)")

    by_strategy = {r["tiling"]: r for r in rows}
    # both strategies must produce a valid mapping covering the layer
    assert by_strategy["kernel_preserving"]["row_tiles"] >= 1
    assert all(0.0 < r["row_utilization"] <= 1.0 for r in rows)
    # the kernel-preserving tiling never splits a kernel across arrays
    cim = CIMConfig(array_rows=128, array_cols=128, cell_bits=2)
    mapping = build_mapping(32, 64, (3, 3), 4, cim, strategy="kernel_preserving")
    assert all(tile.rows % 9 == 0 for tile in mapping.tiles)
