"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced,
CPU-friendly scale.  The environment variable ``REPRO_BENCH_SCALE`` selects
the scale:

* ``tiny``    — smoke scale, the whole suite finishes in ~2 minutes;
* ``small``   — default: meaningful (but still synthetic-data) training runs,
  the whole suite finishes in roughly 10-15 minutes on a few CPU cores;
* ``reduced`` — the larger CPU configuration from
  :func:`repro.training.reduced_experiment`;
* ``full``    — the paper's Table II settings (requires real datasets and
  GPU-scale compute; provided for completeness).
"""

import os
import sys

import pytest

# Make the benchmarks runnable without an installed package or an exported
# PYTHONPATH (``python -m pytest benchmarks/...`` from the repo root).
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.training import reduced_experiment


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def experiment(name: str):
    """Benchmark-scale experiment configuration for one of the paper's datasets."""
    scale = bench_scale()
    if scale == "full":
        from repro.training import paper_experiment
        return paper_experiment(name)
    if scale == "reduced":
        return reduced_experiment(name, tiny=False)
    if scale == "tiny":
        return reduced_experiment(name, tiny=True)
    # "small": a middle ground sized for the default benchmark run
    base = reduced_experiment(name, tiny=False)
    return base.reduced(image_size=12, epochs=4, train_samples=256, test_samples=128,
                        batch_size=32, num_classes=min(base.num_classes, 10),
                        array_size=min(base.array_size, 64))


def bench_epochs(default_tiny: int, default_reduced: int) -> int:
    scale = bench_scale()
    if scale == "tiny":
        return default_tiny
    if scale == "small":
        return max(default_tiny, min(default_reduced, 4))
    return default_reduced


def strict_ordering() -> bool:
    """Whether accuracy-ordering claims are asserted (vs only reported).

    At the ``tiny`` / ``small`` scales the training budget is a few epochs on
    a few hundred synthetic images, so scheme-to-scheme accuracy differences
    are dominated by noise; the benchmarks print the ordering but only fail
    on it when a statistically meaningful scale is requested.
    """
    return bench_scale() in ("reduced", "full")


def check_ordering(condition: bool, message: str) -> None:
    """Assert ``condition`` at reduced/full scale; otherwise print the outcome."""
    if strict_ordering():
        assert condition, message
    elif not condition:
        print(f"[info] ordering not reproduced at scale={bench_scale()!r}: {message}")


@pytest.fixture(scope="session")
def cifar10_config():
    return experiment("cifar10")


@pytest.fixture(scope="session")
def cifar100_config():
    return experiment("cifar100")


@pytest.fixture(scope="session")
def imagenet_config():
    return experiment("imagenet")
