"""Fig. 8 — accuracy vs dequantization overhead.

Places all nine weight x partial-sum granularity combinations on the
(dequantize multiplications per layer, accuracy) plane using the CIFAR-100
settings of Table II.  The paper's claims checked here:

* the overhead depends only on the partial-sum granularity
  (layer < array < column), not on the weight granularity;
* at equal overhead, finer weight granularity does not hurt — in particular
  column/column is at least as accurate as layer/column for the same cost.
"""

from collections import defaultdict

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import print_table, run_overhead_sweep


def run_fig8():
    config = experiment("cifar100")
    return run_overhead_sweep(config, epochs=bench_epochs(2, 4), seed=0)


def test_fig8_accuracy_vs_dequant_overhead(benchmark):
    points = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rows = sorted((p.row() for p in points),
                  key=lambda r: (r["dequant_mults_total"], r["weight_granularity"]))
    print()
    print_table(rows, title="Fig. 8 — accuracy vs dequantize-operation overhead (CIFAR-100, reduced)")

    assert len(points) == 9
    # overhead is a function of the partial-sum granularity only
    overhead_by_psum = defaultdict(set)
    for p in points:
        overhead_by_psum[p.psum_granularity].add(p.dequant_mults_total)
    assert all(len(v) == 1 for v in overhead_by_psum.values())
    assert (min(overhead_by_psum["layer"]) < min(overhead_by_psum["array"])
            <= min(overhead_by_psum["column"]))

    # same-overhead comparison: column weights vs layer weights at column psum
    by_combo = {(p.weight_granularity, p.psum_granularity): p.top1 for p in points}
    ours = by_combo[("column", "column")]
    layer_w = by_combo[("layer", "column")]
    print(f"\nsame-overhead accuracy: column/column={ours:.4f}  layer/column={layer_w:.4f}")
    check_ordering(ours >= layer_w - 0.07,
                   "column/column should match or beat layer/column at equal overhead")
