"""Engine — compiled (fused + arena-scheduled) execution vs interpretation.

The plan-graph compiler (``repro.engine.compiler``) turns a model plan's SSA
op graph into a flat schedule: element-wise chains (``cim+batchnorm+relu``,
``add+relu``, …) fuse into single in-place steps, and a liveness pass packs
every scheduled value into a handful of shared arena blocks, so steady-state
execution performs no per-call output allocations.  This benchmark pins the
compiled-path contract:

* **parity**: compiled output is bit-identical to the interpreted reference
  (max |diff| exactly 0.0) in both float and integer execution modes;
* **throughput**: the compiled schedule is at least 1.2x faster than
  interpretation at the default scale;
* **footprint**: the planned arena is smaller than the interpreter's
  one-buffer-per-node workspace dict.

Interpreted and compiled runs are timed in **separate sequential loops** —
interleaving them per iteration makes each path churn the other's allocator
pools and misstates both (the arena exists precisely to pin those buffers).

Run directly (``python benchmarks/bench_compiler.py``) or through pytest.
Either entry point writes a ``BENCH_compiler.json`` artifact (override the
location with ``REPRO_BENCH_COMPILER_ARTIFACT``); ``tiny``-scale smoke runs
skip the write so `make bench-smoke` never clobbers the tracked
default-scale numbers.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine


def _settings():
    """Workload per benchmark scale (image/width/stream length/batch size)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, samples=24, batch=8, repeats=2)
    return dict(image=14, width=0.5, samples=96, batch=16, repeats=3)


def _build_plans(cfg):
    """One frozen ResNet-8 plan, interpreted and compiled views of it."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    plan = engine.compile_model_plan(model)
    return plan, plan.compile()


def _parity(plan, compiled, batch):
    """Max |interpreted - compiled| per execution mode (must be exactly 0)."""
    diffs = {}
    for mode in ("float", "int"):
        plan.set_mode(mode)
        diffs[mode] = float(
            np.abs(plan.execute(batch) - compiled.execute(batch)).max())
    plan.set_mode("float")
    return diffs


def _time_path(execute, batches, workspace, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one executor over the batch stream."""
    execute(batches[0], workspace=workspace)       # warm allocator + caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for batch in batches:
            execute(batch, workspace=workspace)
        best = min(best, time.perf_counter() - start)
    return best


def run_compiler_benchmark():
    """Measure interpreted vs compiled execution of the same ResNet-8 plan."""
    cfg = _settings()
    plan, compiled = _build_plans(cfg)
    rng = np.random.default_rng(1)
    stream = np.abs(rng.normal(
        size=(cfg["samples"], 3, cfg["image"], cfg["image"])))
    batches = [stream[i:i + cfg["batch"]]
               for i in range(0, cfg["samples"], cfg["batch"])]
    parity = _parity(plan, compiled, batches[0])

    ws_interp, ws_comp = {}, {}
    t_interp = _time_path(plan.execute, batches, ws_interp, cfg["repeats"])
    interp_bytes, interp_bufs = plan.workspace_footprint(ws_interp)
    # release the interpreter's per-node buffers before timing the compiled
    # loop: 19 live buffers fragment the allocator pools the compiled path's
    # conv temporaries would otherwise reuse, slowing it by ~1.3x
    ws_interp.clear()
    t_comp = _time_path(compiled.execute, batches, ws_comp, cfg["repeats"])
    arena_bytes, arena_blocks = compiled.workspace_footprint(ws_comp)
    return {
        "samples": cfg["samples"],
        "batch_size": cfg["batch"],
        "image": cfg["image"],
        "width": cfg["width"],
        "graph_ops": len(plan.nodes) - 1,
        "scheduled_steps": compiled.n_steps,
        "fused_ops": compiled.n_fused,
        "parity_max_abs_diff_float": parity["float"],
        "parity_max_abs_diff_int": parity["int"],
        "interpreted_s": t_interp,
        "compiled_s": t_comp,
        "interpreted_throughput": cfg["samples"] / t_interp,
        "compiled_throughput": cfg["samples"] / t_comp,
        "speedup": t_interp / t_comp,
        "interpreted_workspace_bytes": interp_bytes,
        "interpreted_workspace_buffers": interp_bufs,
        "arena_bytes": arena_bytes,
        "arena_blocks": arena_blocks,
    }


def write_artifact(results, path=None):
    """Write the results to ``BENCH_compiler.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_COMPILER_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("compiler", "BENCH_compiler.json",
                           "REPRO_BENCH_COMPILER_ARTIFACT", results, path=path)


def _report(results) -> None:
    print()
    print(f"samples={results['samples']}  batch={results['batch_size']}  "
          f"image={results['image']}  width={results['width']}")
    print(f"schedule: {results['graph_ops']} ops -> "
          f"{results['scheduled_steps']} steps "
          f"({results['fused_ops']} fused)")
    print(f"parity: float {results['parity_max_abs_diff_float']:.1e}  "
          f"int {results['parity_max_abs_diff_int']:.1e}")
    print(f"interpreted : {results['interpreted_s'] * 1e3:8.1f} ms  "
          f"{results['interpreted_throughput']:8.1f} im/s  "
          f"workspace {results['interpreted_workspace_bytes']} B / "
          f"{results['interpreted_workspace_buffers']} buffers")
    print(f"compiled    : {results['compiled_s'] * 1e3:8.1f} ms  "
          f"{results['compiled_throughput']:8.1f} im/s  "
          f"({results['speedup']:.2f}x)  "
          f"arena {results['arena_bytes']} B / "
          f"{results['arena_blocks']} blocks")


def test_compiler_speedup_and_parity():
    """Acceptance: parity exactly 0.0 (both modes), compiled >= 1.2x at the
    default scale, and the arena strictly smaller than the interpreter's
    workspace."""
    results = run_compiler_benchmark()
    _report(results)
    write_artifact(results)
    assert results["parity_max_abs_diff_float"] == 0.0, (
        "compiled float output drifted from the interpreted reference by "
        f"{results['parity_max_abs_diff_float']:.2e}")
    assert results["parity_max_abs_diff_int"] == 0.0, (
        "compiled int output drifted from the interpreted reference by "
        f"{results['parity_max_abs_diff_int']:.2e}")
    assert results["arena_bytes"] < results["interpreted_workspace_bytes"], (
        f"arena ({results['arena_bytes']} B) not smaller than the "
        f"interpreter workspace ({results['interpreted_workspace_bytes']} B)")
    if bench_scale() != "tiny":
        assert results["speedup"] >= 1.2, (
            f"compiled path only {results['speedup']:.2f}x over "
            "interpretation (expected >= 1.2x at default scale)")


if __name__ == "__main__":
    _results = run_compiler_benchmark()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
