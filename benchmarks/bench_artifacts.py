"""Shared scale / artifact plumbing for the standalone engine benchmarks.

``bench_engine_speedup.py`` and ``bench_runner_throughput.py`` both run
either directly (``python benchmarks/bench_...py``) or through pytest, and
both track a JSON perf artifact at the repository root.  This module owns
the common mechanics once:

* :func:`bench_scale` — the ``REPRO_BENCH_SCALE`` operating point;
* :func:`write_artifact` — artifact writing with the shared rules: each
  benchmark has its **own** default filename and its own override
  environment variable (so overriding one benchmark's path can never
  clobber another's artifact), and ``tiny``-scale smoke runs write nothing
  unless an explicit path insists, keeping the tracked artifacts at
  comparable default-scale numbers.
"""

import json
import os
import time
from typing import Optional


def bench_scale() -> str:
    """Benchmark operating point from ``REPRO_BENCH_SCALE`` (default ``small``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def write_artifact(benchmark: str, default_filename: str, env_var: str,
                   results, path=None) -> Optional[str]:
    """Write ``results`` to the benchmark's JSON artifact; return its path.

    Resolution order: explicit ``path`` argument, then the benchmark's
    ``env_var`` override, then ``default_filename`` at the repository root —
    where ``tiny``-scale runs skip the write entirely (smoke passes must not
    clobber the tracked default-scale trajectory).
    """
    if path is None:
        path = os.environ.get(env_var)
    if path is None:
        if bench_scale() == "tiny":
            return None
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, default_filename)
    payload = {
        "benchmark": benchmark,
        "scale": bench_scale(),
        "unix_time": time.time(),
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return os.path.abspath(path)
