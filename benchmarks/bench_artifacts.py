"""Shared scale / artifact plumbing for the standalone engine benchmarks.

``bench_engine_speedup.py`` and ``bench_runner_throughput.py`` both run
either directly (``python benchmarks/bench_...py``) or through pytest, and
both track a JSON perf artifact at the repository root.  This module owns
the common mechanics once:

* :func:`bench_scale` — the ``REPRO_BENCH_SCALE`` operating point;
* :func:`write_artifact` — artifact writing with the shared rules: each
  benchmark has its **own** default filename and its own override
  environment variable (so overriding one benchmark's path can never
  clobber another's artifact), and ``tiny``-scale smoke runs write nothing
  unless an explicit path insists, keeping the tracked artifacts at
  comparable default-scale numbers;
* :func:`calibrated_frozen_resnet8` — the reference serving model the
  engine benchmarks measure, built once here so they all measure the
  **same** scheme/geometry/calibration.
"""

import json
import os
import time
from typing import Optional


def calibrated_frozen_resnet8(image: int, width: float, num_classes: int = 8,
                              seed: int = 0):
    """Train-free reference model of the serving benchmarks, frozen.

    A reduced ResNet-8 under the paper's column/column 3-bit scheme on a
    64x64 crossbar, calibrated on a seeded batch (moves the BatchNorm stats
    and initializes the lazy LSQ scales) and frozen into the compiled fast
    path.  ``bench_runner_throughput`` and ``bench_server_concurrency``
    both compile their artifacts from this one definition, so a change to
    the reference workload cannot leave the two benchmarks measuring
    different models.
    """
    import numpy as np

    from repro import engine
    from repro.cim import CIMConfig, QuantScheme
    from repro.models import resnet8
    from repro.nn import Tensor
    from repro.nn.tensor import no_grad

    rng = np.random.default_rng(seed)
    model = resnet8(num_classes=num_classes,
                    scheme=QuantScheme(weight_bits=3, act_bits=3, psum_bits=3,
                                       weight_granularity="column",
                                       psum_granularity="column"),
                    cim_config=CIMConfig(array_rows=64, array_cols=64,
                                         cell_bits=1, adc_bits=3),
                    width_multiplier=width, seed=seed)
    calib = np.abs(rng.normal(size=(4, 3, image, image)))
    with no_grad():
        model(Tensor(calib))               # move BN stats off their init values
    model.eval()
    engine.freeze(model, calibrate=Tensor(calib))
    return model


def bench_scale() -> str:
    """Benchmark operating point from ``REPRO_BENCH_SCALE`` (default ``small``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def write_artifact(benchmark: str, default_filename: str, env_var: str,
                   results, path=None) -> Optional[str]:
    """Write ``results`` to the benchmark's JSON artifact; return its path.

    Resolution order: explicit ``path`` argument, then the benchmark's
    ``env_var`` override, then ``default_filename`` at the repository root —
    where ``tiny``-scale runs skip the write entirely (smoke passes must not
    clobber the tracked default-scale trajectory).
    """
    if path is None:
        path = os.environ.get(env_var)
    if path is None:
        if bench_scale() == "tiny":
            return None
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, default_filename)
    payload = {
        "benchmark": benchmark,
        "scale": bench_scale(),
        "unix_time": time.time(),
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return os.path.abspath(path)
