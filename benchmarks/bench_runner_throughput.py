"""Engine — batched InferenceRunner throughput vs a naive per-sample loop.

The model-level artifacts (``repro.engine.model_plan``) make deployment a
pure-NumPy affair: ``engine.load_plan`` rebuilds a ResNet-8 classifier from
one ``.npz`` file with no QAT objects, and ``engine.InferenceRunner`` serves
a sample stream through micro-batched GEMMs with reused activation buffers.
This benchmark pins the serving contract:

* **equivalence**: the loaded artifact's logits match the frozen in-process
  model to <= 1e-10 (float64 plans are bit-exact by construction);
* **throughput**: the micro-batched runner is at least 1.5x faster than a
  naive loop calling the same plan one sample at a time (in practice the
  gap is several x — batched GEMMs amortize every per-call overhead).

Run directly (``python benchmarks/bench_runner_throughput.py``) or through
pytest.  Either entry point writes a ``BENCH_runner.json`` artifact
(override the location with ``REPRO_BENCH_RUNNER_ARTIFACT``); ``tiny``-scale
smoke runs skip the write so `make bench-smoke` never clobbers the tracked
default-scale numbers.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine
from repro.nn import Tensor


def _settings():
    """Workload per benchmark scale (image/width/stream length/batch size)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, samples=24, batch=8, repeats=2)
    return dict(image=14, width=0.5, samples=96, batch=16, repeats=3)


def _build_artifact(tmp_dir, cfg):
    """Train-free ResNet-8 artifact: calibrate, freeze, save, load."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    rng = np.random.default_rng(100)
    reference_in = np.abs(rng.normal(size=(2, 3, cfg["image"], cfg["image"])))
    reference_out = model(Tensor(reference_in)).data.copy()
    path = os.path.join(tmp_dir, "resnet8_plan.npz")
    engine.save_model_plan(engine.compile_model_plan(model), path)
    plan = engine.load_plan(path)
    drift = float(np.abs(plan.execute(reference_in) - reference_out).max())
    return plan, drift


def _time_naive(plan, stream, repeats: int) -> float:
    """Seconds for a per-sample loop over the stream (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for sample in stream:
            plan.execute(sample[None])
        best = min(best, time.perf_counter() - start)
    return best


def _time_runner(plan, stream, batch: int, repeats: int):
    """Seconds for the micro-batched runner (best of ``repeats``), plus stats."""
    runner = engine.InferenceRunner(plan, batch_size=batch)
    best = float("inf")
    for _ in range(repeats):
        runner.stats.reset()
        start = time.perf_counter()
        for _out in runner.run(iter(stream)):
            pass
        best = min(best, time.perf_counter() - start)
    return best, runner.stats


def run_runner_throughput():
    """Measure naive per-sample vs micro-batched serving on a ResNet-8 plan."""
    cfg = _settings()
    import tempfile
    with tempfile.TemporaryDirectory() as tmp_dir:
        plan, drift = _build_artifact(tmp_dir, cfg)
    stream = np.abs(np.random.default_rng(1).normal(
        size=(cfg["samples"], 3, cfg["image"], cfg["image"])))
    plan.execute(stream[: cfg["batch"]])   # warm up caches and lazy state
    t_naive = _time_naive(plan, stream, cfg["repeats"])
    t_runner, stats = _time_runner(plan, stream, cfg["batch"], cfg["repeats"])
    slowest = stats.per_layer()[:3]
    return {
        "samples": cfg["samples"],
        "batch_size": cfg["batch"],
        "load_parity_max_abs_diff": drift,
        "naive_s": t_naive,
        "runner_s": t_runner,
        "naive_throughput": cfg["samples"] / t_naive,
        "runner_throughput": cfg["samples"] / t_runner,
        "speedup": t_naive / t_runner,
        "slowest_layers": [
            {"name": name, "seconds": secs, "calls": calls}
            for name, secs, calls in slowest],
    }


def write_artifact(results, path=None):
    """Write the results to ``BENCH_runner.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_RUNNER_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("runner_throughput", "BENCH_runner.json",
                           "REPRO_BENCH_RUNNER_ARTIFACT", results, path=path)


def _report(results) -> None:
    print()
    print(f"samples={results['samples']}  batch={results['batch_size']}  "
          f"load parity max|diff|={results['load_parity_max_abs_diff']:.2e}")
    print(f"naive  : {results['naive_s'] * 1e3:8.1f} ms  "
          f"{results['naive_throughput']:8.1f} im/s")
    print(f"runner : {results['runner_s'] * 1e3:8.1f} ms  "
          f"{results['runner_throughput']:8.1f} im/s  "
          f"({results['speedup']:.2f}x)")
    for row in results["slowest_layers"]:
        print(f"  slowest: {row['name']:24} {row['seconds'] * 1e3:7.2f} ms "
              f"over {row['calls']} batches")


def test_runner_throughput_and_parity():
    """Acceptance: load parity <= 1e-10 and runner >= 1.5x over a naive loop."""
    results = run_runner_throughput()
    _report(results)
    write_artifact(results)
    assert results["load_parity_max_abs_diff"] <= 1e-10, (
        f"loaded artifact drifted by {results['load_parity_max_abs_diff']:.2e}")
    assert results["speedup"] >= 1.5, (
        f"micro-batched runner only {results['speedup']:.2f}x faster than the "
        "naive per-sample loop (expected >= 1.5x)")


if __name__ == "__main__":
    _results = run_runner_throughput()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
