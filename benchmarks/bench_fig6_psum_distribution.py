"""Fig. 6 — column-wise partial-sum distribution.

The paper shows that column-wise weight quantization produces integer
partial-sum distributions with a larger per-column dynamic range than
layer-wise weight quantization (4th conv layer of ResNet-20 on CIFAR-10).
This benchmark records the same statistic on the reduced configuration and
prints the per-column dynamic-range summary for both weight granularities.
"""

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import compare_psum_distributions, print_table


def run_fig6():
    config = experiment("cifar10")
    return compare_psum_distributions(config, layer_index=3,
                                      train_epochs=bench_epochs(1, 2), seed=0)


def test_fig6_psum_distribution(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    rows = [dist.summary() for dist in results.values()]
    print()
    print_table(rows, title="Fig. 6 — integer partial-sum distribution by weight granularity")

    layer_range = results["layer"].mean_dynamic_range
    column_range = results["column"].mean_dynamic_range
    print(f"\nmean per-column dynamic range: layer-wise={layer_range:.2f} "
          f"column-wise={column_range:.2f} "
          f"(paper: column-wise is larger)")
    # Paper's qualitative claim: column-wise weight quantization widens the
    # usable integer range of the partial sums.
    check_ordering(column_range >= layer_range * 0.9,
                   "column-wise weights should widen the partial-sum dynamic range")
