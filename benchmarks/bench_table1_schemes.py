"""Table I — related-work quantization schemes.

Regenerates the qualitative comparison of Table I (granularity, training
strategy, learnable scale factors) from the scheme registry and prints it in
the paper's row order.
"""

from repro.analysis import print_table
from repro.core import SCHEME_REGISTRY, table1_rows


def build_table1():
    rows = table1_rows()
    assert len(rows) == len(SCHEME_REGISTRY)
    return rows


def test_table1_related_work_comparison(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    print()
    print_table(rows, title="Table I — related works on partial-sum quantization")
    # the paper's qualitative claims
    ours = next(r for r in rows if "Ours" in r["scheme"])
    assert ours["weight_granularity"] == "column"
    assert ours["psum_granularity"] == "column"
    assert ours["weight_learnable_scale"] == "yes"
    assert ours["psum_learnable_scale"] == "yes"
    assert all(r["weight_granularity"] != "column" or "Ours" in r["scheme"] for r in rows)
