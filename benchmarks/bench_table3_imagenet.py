"""Table III — ResNet-18 / ImageNet accuracy by quantization scheme.

Reproduces the Table III protocol (W3 / A3 / 2-bit partial sums, 3 bits per
cell, 256x256 arrays) on the reduced ImageNet-like configuration and prints
one row per scheme, in the same order as the paper's table.
"""

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import print_table, run_related_work_comparison


def run_table3():
    config = experiment("imagenet")
    return run_related_work_comparison(config, epochs=bench_epochs(2, 4), seed=0)


def test_table3_imagenet_scheme_comparison(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    order = ["full_precision", "kim", "bai", "saxena_date22", "saxena_islped23", "ours"]
    rows = [results[key].row() for key in order]
    print()
    print_table(rows, title="Table III — ImageNet (reduced) accuracy by scheme")

    accuracy = {key: results[key].top1 for key in order}
    quantized = {k: v for k, v in accuracy.items() if k != "full_precision"}
    print(f"\nours={accuracy['ours']:.4f}  best-of-related={max(quantized.values()):.4f}  "
          f"fp={accuracy['full_precision']:.4f}")
    # Table III shape: ours is the closest quantized scheme to full precision
    check_ordering(accuracy["ours"] >= max(quantized.values()) - 0.05,
                   "ours should be the best quantized scheme (Table III)")
    check_ordering(accuracy["full_precision"] >= accuracy["ours"] - 0.1,
                   "full precision should upper-bound the quantized model")
