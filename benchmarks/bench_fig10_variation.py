"""Fig. 10 — inference accuracy vs memory-cell variation.

Trains the paper's scheme (column/column) and the strongest related-work
scheme (layer/column, Saxena [9]) on the CIFAR-10 configuration, then sweeps
the log-normal cell-variation sigma (Eq. 5) over the figure's x-axis and
evaluates each model with Monte-Carlo trials.

Expected shape: accuracy decreases with sigma for every scheme, and the
column-wise-weight model degrades no faster than the layer-wise-weight one.
"""

import numpy as np
from conftest import bench_epochs, bench_scale, check_ordering, experiment

from repro.analysis import (build_loaders, print_table, run_scheme, run_variation_sweep)


SIGMAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)


def run_fig10():
    config = experiment("cifar10")
    epochs = bench_epochs(2, 5)
    train, test = build_loaders(config)

    from repro.analysis.common import build_experiment_model
    from repro.training import QATTrainer, TrainerConfig

    models = {}
    for key, (wg, pg) in {"ours": ("column", "column"),
                          "saxena_islped23": ("layer", "column")}.items():
        model = build_experiment_model(config, config.scheme(wg, pg), seed=0)
        QATTrainer(model, train, test, TrainerConfig(epochs=epochs, lr=config.lr)).fit()
        models[key] = model

    trials = 2 if bench_scale() == "tiny" else 3
    return run_variation_sweep(models, test, sigmas=SIGMAS, trials=trials, seed=0)


def test_fig10_variation_robustness(benchmark):
    points = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    print()
    print_table([p.row() for p in points],
                title="Fig. 10 — accuracy vs memory-cell variation sigma")

    by_scheme = {}
    for p in points:
        by_scheme.setdefault(p.scheme, {})[p.sigma] = p.mean_top1

    for scheme, series in by_scheme.items():
        clean = series[0.0]
        worst = series[max(SIGMAS)]
        print(f"{scheme}: sigma=0 accuracy {clean:.4f} -> sigma={max(SIGMAS)} "
              f"accuracy {worst:.4f}")
        # variation cannot systematically improve accuracy
        check_ordering(worst <= clean + 0.08,
                       f"variation should not improve accuracy for {scheme}")

    # the paper's robustness claim, with slack for the reduced scale: at the
    # largest sigma our scheme retains at least as much accuracy (within noise)
    check_ordering(by_scheme["ours"][max(SIGMAS)] >= by_scheme["saxena_islped23"][max(SIGMAS)] - 0.1,
                   "column-wise weights should be at least as robust to variation")
