"""Engine — serving-lifecycle benchmark: rolling reloads and autoscaling, measured.

Two lifecycle claims, quantified against a live :class:`repro.engine.NetServer`:

* **rolling reload is invisible at the tail** — a closed-loop client fleet
  measures p50/p99 in a steady phase, then again while the artifact is
  re-saved and ``POST /v1/models/{name}/reload`` rolls the pool over several
  times mid-traffic.  Every accepted request must complete (``failed == 0``),
  every answered row must be bit-identical to the in-process runner, the
  request/sample counters must conserve, and the during-swap p99 is reported
  next to the steady p99 (the cost of a swap is the number, not a failure
  mode);
* **autoscaling cuts saturated tail latency** — the same saturating workload
  runs twice against a deliberately slow model: once on a fixed 1-shard
  pool, once with ``max_shards`` autoscaling enabled.  Reported: p99 of
  both runs (the autoscaled pool must be faster), the scale-up reaction
  time (load onset → second shard in rotation), and the scale-event
  counters.

Run directly (``python benchmarks/bench_reload_autoscale.py``) or through
pytest.  Either entry point writes ``BENCH_reload.json`` (override with
``REPRO_BENCH_RELOAD_ARTIFACT``); ``tiny``-scale smoke runs skip the write
so ``make bench-smoke`` never clobbers the tracked default-scale numbers.
"""

import http.client
import json
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine
from repro.engine.latency import percentiles


def _settings():
    """Workload per benchmark scale (model size, fleet sizes, phase lengths)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, clients=4, per_client=8,
                    reloads=2, max_batch=8, max_wait_ms=1.0, queue_size=64,
                    slow_delay_s=0.02, slow_clients=6, slow_per_client=10,
                    max_shards=3)
    return dict(image=14, width=0.5, clients=8, per_client=24,
                reloads=3, max_batch=16, max_wait_ms=2.0, queue_size=128,
                slow_delay_s=0.03, slow_clients=8, slow_per_client=30,
                max_shards=4)


class _Client:
    """One keep-alive HTTP connection issuing predict requests."""

    def __init__(self, net, model: str, timeout: float = 60.0):
        self._conn = http.client.HTTPConnection(net.host, net.port,
                                                timeout=timeout)
        self._path = f"/v1/models/{model}/predict"

    def predict(self, sample) -> tuple:
        """POST one single-sample batch; returns (status, json, latency_s)."""
        body = json.dumps({"inputs": [sample]}).encode()
        start = time.perf_counter()
        self._conn.request("POST", self._path, body=body)
        response = self._conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, time.perf_counter() - start

    def close(self):
        self._conn.close()


def _closed_loop(net, model, pool, clients, per_client):
    """K closed-loop clients; returns (latencies, {index: output_row})."""
    latencies, outputs, lock = [], {}, threading.Lock()

    def worker(cid):
        client = _Client(net, model)
        try:
            for i in range(per_client):
                index = (cid * per_client + i) % pool.shape[0]
                status, payload, latency = client.predict(pool[index].tolist())
                assert status == 200, payload
                with lock:
                    latencies.append(latency)
                    outputs[index] = payload["outputs"][0]
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, outputs


def _tail(latencies) -> dict:
    tail = percentiles(latencies, qs=(50.0, 99.0))
    return {"requests": len(latencies), "p50_ms": tail[50.0] * 1e3,
            "p99_ms": tail[99.0] * 1e3}


def run_reload_phase(cfg, tmp_dir):
    """Steady vs during-swap tail latency across rolling reloads."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    path = os.path.join(tmp_dir, "resnet8_plan.npz")
    plan = engine.compile_model_plan(model)
    engine.save_model_plan(plan, path)
    engine.clear_plan_cache()
    reference = engine.InferenceRunner(engine.load_plan(path),
                                       batch_size=cfg["max_batch"])
    rng = np.random.default_rng(7)
    pool = np.abs(rng.normal(size=(32, 3, cfg["image"], cfg["image"])))
    expected = reference.predict(pool)

    net = engine.NetServer()
    net.add_model("resnet", path, n_shards=2, max_batch=cfg["max_batch"],
                  max_wait_ms=cfg["max_wait_ms"], queue_size=cfg["queue_size"])
    net.start()
    try:
        warm = _Client(net, "resnet")
        for index in range(4):
            warm.predict(pool[index].tolist())
        warm.close()

        steady_lat, steady_out = _closed_loop(
            net, "resnet", pool, cfg["clients"], cfg["per_client"])

        swaps_done = []

        def roll():
            for _ in range(cfg["reloads"]):
                time.sleep(0.05)
                engine.save_model_plan(plan, path)   # the operator's cp step
                conn = http.client.HTTPConnection(net.host, net.port,
                                                  timeout=30.0)
                conn.request("POST", "/v1/models/resnet/reload")
                response = conn.getresponse()
                body = json.loads(response.read())
                conn.close()
                assert response.status == 200, body
                swaps_done.append(body["reloads"])

        roller = threading.Thread(target=roll)
        roller.start()
        swap_lat, swap_out = _closed_loop(
            net, "resnet", pool, cfg["clients"], cfg["per_client"])
        roller.join()

        counters = net.endpoint("resnet").counters.to_dict()
        version = net.metrics()["models"]["resnet"]["plan"]["version"]
    finally:
        net.close()

    outputs = dict(steady_out)
    outputs.update(swap_out)
    drift = max(float(np.abs(np.asarray(row, dtype=np.float64)
                             - expected[index]).max())
                for index, row in outputs.items())
    steady, during = _tail(steady_lat), _tail(swap_lat)
    return {
        "n_shards": 2,
        "reloads": len(swaps_done),
        "steady": steady,
        "during_swap": during,
        "swap_p99_over_steady_p99": during["p99_ms"] / steady["p99_ms"],
        "parity_max_abs_diff": drift,
        "failed": counters["failed"],
        "accepted": counters["accepted"],
        "completed": counters["completed"],
        "conserved": (counters["accepted"] + counters["rejected"]
                      == counters["offered"])
        and (counters["samples_accepted"] + counters["samples_rejected"]
             == counters["samples_offered"]),
        "metrics_version": version,
    }


class _SlowPlan:
    """Fixed-delay toy plan so the saturation scenario is deterministic."""

    np_dtype = np.dtype(np.float64)

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def execute(self, x, timings=None, workspace=None):
        """``2x + 1`` after a fixed delay per non-empty batch."""
        x = np.asarray(x)
        if x.shape[0]:
            time.sleep(self.delay_s)
        return x * 2.0 + 1.0


def _saturate(net, model, cfg):
    latencies, lock = [], threading.Lock()

    def worker(cid):
        client = _Client(net, model)
        try:
            for i in range(cfg["slow_per_client"]):
                status, payload, latency = client.predict(
                    [float(cid), float(i)])
                assert status == 200, payload
                with lock:
                    latencies.append(latency)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(cfg["slow_clients"])]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, start


def run_autoscale_phase(cfg):
    """Same saturating workload on a fixed pool vs an autoscaled pool."""
    # The queue bound sets the autoscaler's high-water mark; size it so a
    # closed-loop fleet of `slow_clients` actually crosses it (pending tops
    # out at clients - 1).
    queue_size = max(4, cfg["slow_clients"] * 2)
    # Fixed 1-shard baseline: every request queues behind the whole fleet.
    with engine.NetServer() as net:
        net.add_model("slow", _SlowPlan(cfg["slow_delay_s"]), n_shards=1,
                      max_batch=1, max_wait_ms=0.0, queue_size=queue_size)
        fixed_lat, _ = _saturate(net, "slow", cfg)

    # Autoscaled: identical pool at mount, allowed to grow under pressure.
    with engine.NetServer() as net:
        net.add_model("slow", _SlowPlan(cfg["slow_delay_s"]), n_shards=1,
                      max_batch=1, max_wait_ms=0.0, queue_size=queue_size,
                      max_shards=cfg["max_shards"],
                      autoscale=dict(interval_s=0.01, up_queue_frac=0.2,
                                     idle_s=5.0, cooldown_s=0.05))
        endpoint = net.endpoint("slow")
        grew_at, stop_watch = [], threading.Event()

        def watch():
            while not stop_watch.is_set():
                if endpoint.server.n_shards >= 2:
                    grew_at.append(time.perf_counter())
                    return
                time.sleep(0.002)

        watcher = threading.Thread(target=watch)
        watcher.start()
        scaled_lat, load_start = _saturate(net, "slow", cfg)
        stop_watch.set()
        watcher.join()
        counters = endpoint.counters.to_dict()
        peak_shards = endpoint.server.n_shards

    fixed, scaled = _tail(fixed_lat), _tail(scaled_lat)
    return {
        "workload": {"clients": cfg["slow_clients"],
                     "requests_per_client": cfg["slow_per_client"],
                     "compute_s_per_request": cfg["slow_delay_s"]},
        "fixed_pool": dict(fixed, n_shards=1),
        "autoscaled_pool": dict(scaled, max_shards=cfg["max_shards"],
                                peak_shards=peak_shards,
                                scale_ups=counters["scale_ups"]),
        "scale_up_reaction_ms": ((grew_at[0] - load_start) * 1e3
                                 if grew_at else None),
        "p99_cut": 1.0 - scaled["p99_ms"] / fixed["p99_ms"],
    }


def run_reload_autoscale():
    """Both lifecycle phases; returns the combined results document."""
    cfg = _settings()
    with tempfile.TemporaryDirectory() as tmp_dir:
        reload_results = run_reload_phase(cfg, tmp_dir)
    autoscale_results = run_autoscale_phase(cfg)
    return {"reload": reload_results, "autoscale": autoscale_results}


def write_artifact(results, path=None):
    """Write the results to ``BENCH_reload.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_RELOAD_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("reload_autoscale", "BENCH_reload.json",
                           "REPRO_BENCH_RELOAD_ARTIFACT", results, path=path)


def _report(results) -> None:
    rel = results["reload"]
    print()
    print(f"rolling reload x{rel['reloads']} under load "
          f"(parity max|diff|={rel['parity_max_abs_diff']:.2e}, "
          f"failed={rel['failed']}, conserved={rel['conserved']}):")
    for phase in ("steady", "during_swap"):
        shape = rel[phase]
        print(f"{phase:>12}: {shape['requests']:4d} req  "
              f"p50 {shape['p50_ms']:7.1f} ms  p99 {shape['p99_ms']:7.1f} ms")
    print(f"   swap p99 / steady p99 = {rel['swap_p99_over_steady_p99']:.2f}")
    auto = results["autoscale"]
    fixed, scaled = auto["fixed_pool"], auto["autoscaled_pool"]
    print(f"saturated pool, {auto['workload']['clients']} clients x "
          f"{auto['workload']['compute_s_per_request']*1e3:.0f} ms/request:")
    print(f"   fixed 1 shard : p99 {fixed['p99_ms']:7.1f} ms")
    reaction = ("n/a" if auto["scale_up_reaction_ms"] is None
                else f"{auto['scale_up_reaction_ms']:.0f} ms")
    print(f"   autoscaled    : p99 {scaled['p99_ms']:7.1f} ms "
          f"(peak {scaled['peak_shards']} shards, "
          f"{scaled['scale_ups']} scale-ups, reaction {reaction})")
    print(f"   p99 cut: {auto['p99_cut']*100:.0f}%")


def test_reload_autoscale():
    """Acceptance: reloads drop nothing and stay bit-exact; autoscaling
    demonstrably cuts saturated p99 vs the fixed pool."""
    results = run_reload_autoscale()
    _report(results)
    write_artifact(results)
    rel = results["reload"]
    assert rel["parity_max_abs_diff"] == 0.0, (
        "responses across rolling reloads drifted from the runner by "
        f"{rel['parity_max_abs_diff']:.2e} (float64 must be bit-exact)")
    assert rel["failed"] == 0, (
        f"{rel['failed']} accepted requests failed during rolling reloads "
        "(the no-drop contract)")
    assert rel["completed"] == rel["accepted"]
    assert rel["conserved"], "request/sample counters leaked across reloads"
    assert rel["reloads"] == _settings()["reloads"]
    assert rel["metrics_version"]["reloads"] == rel["reloads"]
    auto = results["autoscale"]
    assert auto["autoscaled_pool"]["scale_ups"] >= 1, (
        "the autoscaler never grew the pool under saturation")
    assert auto["scale_up_reaction_ms"] is not None \
        and auto["scale_up_reaction_ms"] < 5000.0
    assert auto["autoscaled_pool"]["p99_ms"] < auto["fixed_pool"]["p99_ms"], (
        f"autoscaled p99 {auto['autoscaled_pool']['p99_ms']:.1f} ms did not "
        f"beat the fixed pool's {auto['fixed_pool']['p99_ms']:.1f} ms")


if __name__ == "__main__":
    _results = run_reload_autoscale()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
