"""Engine — frozen-inference throughput vs. the seed QAT forward.

The frozen engine (``repro.engine``) compiles each CIM layer into a static
plan (cached integer tiled weights, bit-splits, folded dequant scales) and
runs eval batches through a fused NumPy fast path.  This benchmark measures
eval-batch throughput of a ResNet basic block — the paper's workhorse
topology — in both partial-sum-quantization modes and checks:

* **speedup**: the frozen forward is at least 3x faster than the seed
  forward (in practice ~4-5x with partial-sum quantization enabled and more
  without, where the fully-fused single-GEMM path applies);
* **equivalence**: frozen and seed outputs agree to <= 1e-10 max abs diff,
  including with partial-sum quantization enabled.

Run directly (``python benchmarks/bench_engine_speedup.py``) or through
pytest (``pytest benchmarks/bench_engine_speedup.py``).  Either entry point
writes a ``BENCH_engine.json`` artifact (override the location with
``REPRO_BENCH_ARTIFACT``) so the engine's perf trajectory can be tracked
across changes; ``tiny``-scale smoke runs skip the write, keeping the
tracked artifact at comparable default-scale numbers.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import bench_scale, write_artifact as _write_artifact

from repro import engine
from repro.cim import CIMConfig, QuantScheme
from repro.models.blocks import BasicBlock, LayerFactory
from repro.nn import Tensor


def _settings():
    """Block geometry per benchmark scale (channels, image, batch, timing reps)."""
    if bench_scale() == "tiny":
        return dict(channels=16, image=12, batch=4, repeats=3, iters=2)
    return dict(channels=16, image=16, batch=8, repeats=5, iters=3)


def _time(fn, repeats: int, iters: int) -> float:
    """Best-of-``repeats`` average seconds per call (robust to scheduler noise)."""
    fn()  # warm up caches and lazy state
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def _build_block(quantize_psum: bool, channels: int) -> BasicBlock:
    scheme = QuantScheme(quantize_psum=quantize_psum)
    cfg = CIMConfig(array_rows=128, array_cols=128, cell_bits=1)
    factory = LayerFactory(scheme=scheme, cim_config=cfg, quantize_first_act=True,
                           rng=np.random.default_rng(0))
    return BasicBlock(factory, channels, channels)


def run_engine_speedup():
    """Measure seed vs frozen throughput on a ResNet basic block."""
    cfg = _settings()
    x = Tensor(np.abs(np.random.default_rng(1).normal(
        size=(cfg["batch"], cfg["channels"], cfg["image"], cfg["image"]))))
    results = {}
    for quantize_psum in (True, False):
        block = _build_block(quantize_psum, cfg["channels"])
        block.eval()
        reference = block(x).data.copy()
        t_seed = _time(lambda: block(x), cfg["repeats"], cfg["iters"])
        engine.freeze(block)
        frozen_out = block(x).data
        t_frozen = _time(lambda: block(x), cfg["repeats"], cfg["iters"])
        samples = cfg["batch"]
        results["psum_on" if quantize_psum else "psum_off"] = {
            "seed_ms": t_seed * 1e3,
            "frozen_ms": t_frozen * 1e3,
            "seed_throughput": samples / t_seed,
            "frozen_throughput": samples / t_frozen,
            "speedup": t_seed / t_frozen,
            "max_abs_diff": float(np.abs(frozen_out - reference).max()),
        }
    return results


def write_artifact(results, path=None):
    """Write the results to ``BENCH_engine.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("engine_speedup", "BENCH_engine.json",
                           "REPRO_BENCH_ARTIFACT", results, path=path)


def _report(results) -> None:
    print()
    header = f"{'mode':10} {'seed ms':>9} {'frozen ms':>10} {'speedup':>8} {'im/s seed':>10} {'im/s frozen':>12} {'max|diff|':>10}"
    print(header)
    print("-" * len(header))
    for mode, row in results.items():
        print(f"{mode:10} {row['seed_ms']:9.2f} {row['frozen_ms']:10.2f} "
              f"{row['speedup']:7.2f}x {row['seed_throughput']:10.1f} "
              f"{row['frozen_throughput']:12.1f} {row['max_abs_diff']:10.2e}")


def test_engine_speedup_and_equivalence():
    """Frozen engine: >= 3x eval throughput, <= 1e-10 output drift.

    The equivalence bound is deterministic and always enforced.  The timing
    gate is relaxed at the ``tiny`` smoke scale (2-3 iterations on a possibly
    contended CPU make a hard 3x threshold flaky); the full >= 3x contract is
    asserted at the default scale, where measurements are stable (~4-5x in
    practice).
    """
    results = run_engine_speedup()
    _report(results)
    write_artifact(results)
    for mode, row in results.items():
        assert row["max_abs_diff"] <= 1e-10, (
            f"{mode}: frozen output drifted by {row['max_abs_diff']:.2e}")
    min_speedup = 1.5 if bench_scale() == "tiny" else 3.0
    assert results["psum_on"]["speedup"] >= min_speedup, (
        f"frozen engine only {results['psum_on']['speedup']:.2f}x faster with "
        f"partial-sum quantization enabled (expected >= {min_speedup}x)")
    assert results["psum_off"]["speedup"] >= min_speedup, (
        f"frozen engine only {results['psum_off']['speedup']:.2f}x faster on "
        f"the fused (psum-quant-off) path (expected >= {min_speedup}x)")


if __name__ == "__main__":
    _results = run_engine_speedup()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
