"""Engine — concurrent PlanServer throughput vs per-request single-runner serving.

PR 3's :class:`~repro.engine.runner.InferenceRunner` is single-stream: a
deployment without a scheduler serves each incoming request the moment it
arrives, i.e. one ``predict(sample[None])`` per request, and its own
docstring "leaves concurrency to the caller".  The
:class:`~repro.engine.server.PlanServer` is that caller: requests coalesce
through the dynamic batcher into fat batches across a pool of shard
executors, and repeated inputs resolve from the LRU result cache without
executing at all.  This benchmark pins the serving contract on a realistic
request mix (a fraction of requests repeat, as classifier traffic does):

* **equivalence**: every server response is bit-identical to the
  per-request single-runner response (float64 plans);
* **aggregate throughput**: the 2-shard server sustains >= 1.3x the
  single-runner per-request path at the default scale (the 1-shard server
  is recorded alongside for the sharding breakdown).

Run directly (``python benchmarks/bench_server_concurrency.py``) or through
pytest.  Either entry point writes a ``BENCH_server.json`` artifact
(override the location with ``REPRO_BENCH_SERVER_ARTIFACT``); ``tiny``-scale
smoke runs skip the write so `make bench-smoke` never clobbers the tracked
default-scale numbers.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_artifacts import (bench_scale, calibrated_frozen_resnet8,
                             write_artifact as _write_artifact)

from repro import engine


def _settings():
    """Workload per benchmark scale (image/width/request mix/knobs)."""
    if bench_scale() == "tiny":
        return dict(image=10, width=0.25, unique=16, repeat_fraction=0.25,
                    max_batch=8, max_wait_ms=1.0, cache_entries=64, repeats=2)
    return dict(image=14, width=0.5, unique=72, repeat_fraction=0.25,
                max_batch=16, max_wait_ms=2.0, cache_entries=256, repeats=3)


def _build_artifact(tmp_dir, cfg):
    """Train-free ResNet-8 artifact: calibrate, freeze, save, cached load."""
    model = calibrated_frozen_resnet8(cfg["image"], cfg["width"])
    path = os.path.join(tmp_dir, "resnet8_plan.npz")
    engine.save_model_plan(engine.compile_model_plan(model), path)
    engine.clear_plan_cache()
    plan = engine.load_plan_cached(path)
    assert engine.load_plan_cached(path) is plan   # hot reload is cached
    return plan


def _request_stream(cfg):
    """Two waves of single-sample requests: fresh inputs, then a repeat wave.

    Wave one is ``unique`` fresh inputs; wave two re-submits a seeded draw of
    them, modelling the share of identical inputs sustained classifier
    traffic sees *after* the originals were served — the requests the
    server's result cache converts into queue-free responses.
    """
    rng = np.random.default_rng(1)
    unique = np.abs(rng.normal(
        size=(cfg["unique"], 3, cfg["image"], cfg["image"])))
    n_repeats = int(cfg["unique"] * cfg["repeat_fraction"] /
                    (1.0 - cfg["repeat_fraction"]))
    wave_two = [int(rng.integers(0, cfg["unique"])) for _ in range(n_repeats)]
    return unique, wave_two


def _time_per_request_runner(plan, unique, wave_two, repeats: int):
    """Per-request serving through a single InferenceRunner (the PR 3 path)."""
    runner = engine.InferenceRunner(plan, batch_size=1)
    order = list(range(unique.shape[0])) + wave_two
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        start = time.perf_counter()
        outputs = [runner.predict(unique[i][None])[0] for i in order]
        best = min(best, time.perf_counter() - start)
    return best, outputs


def _time_server(plan, unique, wave_two, cfg, n_shards: int, repeats: int):
    """Aggregate time for both request waves through one PlanServer."""
    best = float("inf")
    outputs = None
    report = None
    for _ in range(repeats):
        with engine.PlanServer(plan, n_shards=n_shards,
                               max_batch=cfg["max_batch"],
                               max_wait_ms=cfg["max_wait_ms"],
                               result_cache_entries=cfg["cache_entries"]) as server:
            start = time.perf_counter()
            futures = server.submit_many(unique)
            first = [future.result(timeout=60.0) for future in futures]
            futures = [server.submit(unique[i]) for i in wave_two]
            second = [future.result(timeout=60.0) for future in futures]
            best = min(best, time.perf_counter() - start)
            outputs = first + second
            report = server.stats_report()
    return best, outputs, report


def run_server_concurrency():
    """Measure per-request single-runner serving vs the concurrent server."""
    cfg = _settings()
    import tempfile
    with tempfile.TemporaryDirectory() as tmp_dir:
        plan = _build_artifact(tmp_dir, cfg)
    unique, wave_two = _request_stream(cfg)
    n_requests = unique.shape[0] + len(wave_two)
    plan.execute(unique[: cfg["max_batch"]])   # warm up caches and lazy state

    t_runner, runner_out = _time_per_request_runner(plan, unique, wave_two,
                                                    cfg["repeats"])
    t_one, one_out, one_report = _time_server(plan, unique, wave_two, cfg,
                                              n_shards=1,
                                              repeats=cfg["repeats"])
    t_two, two_out, two_report = _time_server(plan, unique, wave_two, cfg,
                                              n_shards=2,
                                              repeats=cfg["repeats"])

    drift = max(float(np.abs(np.asarray(server_out) -
                             np.asarray(runner_out)).max())
                for server_out in (one_out, two_out))
    return {
        "requests": n_requests,
        "unique_inputs": cfg["unique"],
        "repeat_fraction": 1.0 - cfg["unique"] / n_requests,
        "max_batch": cfg["max_batch"],
        "max_wait_ms": cfg["max_wait_ms"],
        "parity_max_abs_diff": drift,
        "runner_per_request_s": t_runner,
        "server_1shard_s": t_one,
        "server_2shard_s": t_two,
        "runner_throughput": n_requests / t_runner,
        "server_1shard_throughput": n_requests / t_one,
        "server_2shard_throughput": n_requests / t_two,
        "speedup_1shard": t_runner / t_one,
        "speedup_2shard": t_runner / t_two,
        "server_2shard_stats": {
            "scheduler": two_report["scheduler"],
            "cache": two_report.get("cache"),
            "shard_samples": [shard["samples"]
                              for shard in two_report["shards"]],
        },
    }


def write_artifact(results, path=None):
    """Write the results to ``BENCH_server.json`` (see ``bench_artifacts``).

    Skipped at the ``tiny`` smoke scale; override the location with
    ``REPRO_BENCH_SERVER_ARTIFACT`` or the ``path`` argument.
    """
    return _write_artifact("server_concurrency", "BENCH_server.json",
                           "REPRO_BENCH_SERVER_ARTIFACT", results, path=path)


def _report(results) -> None:
    print()
    print(f"requests={results['requests']}  "
          f"(unique={results['unique_inputs']}, "
          f"repeat={results['repeat_fraction']:.0%})  "
          f"max_batch={results['max_batch']}  "
          f"parity max|diff|={results['parity_max_abs_diff']:.2e}")
    print(f"runner/request : {results['runner_per_request_s'] * 1e3:8.1f} ms  "
          f"{results['runner_throughput']:8.1f} req/s")
    print(f"server 1 shard : {results['server_1shard_s'] * 1e3:8.1f} ms  "
          f"{results['server_1shard_throughput']:8.1f} req/s  "
          f"({results['speedup_1shard']:.2f}x)")
    print(f"server 2 shard : {results['server_2shard_s'] * 1e3:8.1f} ms  "
          f"{results['server_2shard_throughput']:8.1f} req/s  "
          f"({results['speedup_2shard']:.2f}x)")
    stats = results["server_2shard_stats"]
    print(f"  scheduler: {stats['scheduler']['batches']} batches, "
          f"mean {stats['scheduler']['mean_batch']:.1f}, "
          f"cache hits {stats['cache']['hits'] if stats['cache'] else 0}, "
          f"shard split {stats['shard_samples']}")


def test_server_concurrency_and_parity():
    """Acceptance: bit-identical serving and >= 1.3x aggregate throughput
    for the 2-shard server over per-request single-runner serving."""
    results = run_server_concurrency()
    _report(results)
    write_artifact(results)
    assert results["parity_max_abs_diff"] == 0.0, (
        f"server responses drifted from the single-runner path by "
        f"{results['parity_max_abs_diff']:.2e} (float64 must be bit-exact)")
    assert results["speedup_2shard"] >= 1.3, (
        f"2-shard server only {results['speedup_2shard']:.2f}x the "
        "per-request single-runner throughput (expected >= 1.3x)")


if __name__ == "__main__":
    _results = run_server_concurrency()
    _report(_results)
    _path = write_artifact(_results)
    if _path:
        print(f"\nartifact: {_path}")
