"""Fig. 7(b) — ResNet-20 / CIFAR-100 accuracy under each quantization scheme.

Same protocol as Fig. 7(a) but with the CIFAR-100 settings of Table II
(W4 / A4 / 3-bit partial sums, 2 bits per cell).  Additionally prints the
no-partial-sum-quantization reference (the coloured dashed lines of the
figure) for the column-wise weight granularity.
"""

from conftest import bench_epochs, check_ordering, experiment

from repro.analysis import build_loaders, print_table, run_related_work_comparison, run_scheme


def run_fig7b():
    config = experiment("cifar100")
    epochs = bench_epochs(2, 5)
    results = run_related_work_comparison(config, epochs=epochs, seed=0)

    # dashed-line reference: column-wise weights without partial-sum quantization
    train, test = build_loaders(config)
    no_psq = run_scheme(config, config.scheme("column", "column", quantize_psum=False),
                        train, test, training="qat", epochs=epochs, seed=0)
    results["column_w_no_psq"] = no_psq
    return results


def test_fig7b_cifar100_scheme_comparison(benchmark):
    results = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    rows = [result.row() for result in results.values()]
    print()
    print_table(rows, title="Fig. 7(b) — CIFAR-100 accuracy by quantization scheme")

    accuracy = {key: result.top1 for key, result in results.items()}
    quantized = {k: v for k, v in accuracy.items()
                 if k not in ("full_precision", "column_w_no_psq")}
    print(f"\nours={accuracy['ours']:.4f}  best-of-related={max(quantized.values()):.4f}  "
          f"no-PSQ reference={accuracy['column_w_no_psq']:.4f}")
    check_ordering(accuracy["ours"] >= max(quantized.values()) - 0.05,
                   "ours should be the best quantized scheme (Fig. 7b)")
    # partial-sum quantization cannot beat its own no-PSQ upper bound by much
    check_ordering(accuracy["ours"] <= accuracy["column_w_no_psq"] + 0.1,
                   "partial-sum quantization should not beat its no-PSQ bound")
